"""Extension — the conclusion's second direction: shelf heuristics.

"Another further direction is to investigate different kind of heuristics
like those based on packing (partition on shelves) algorithms."

This ablation compares NFDH/FFDH shelf scheduling against LSRC on random
workloads with and without reservations.  Shape claims: shelves pay a
structural price (higher average ratio than LSRC) but remain within a
small constant of the lower bound; FFDH never uses more shelves than
NFDH.
"""


from repro.algorithms import (
    FirstFitShelfScheduler,
    ListScheduler,
    NextFitShelfScheduler,
)
from repro.algorithms.shelf import _build_shelves_ff, _build_shelves_nf
from repro.analysis import format_table, geometric_mean
from repro.core import ReservationInstance, ratio_to_lower_bound
from repro.workloads import random_alpha_reservations, uniform_instance


def _pool(with_reservations):
    out = []
    for seed in range(8):
        jobs = uniform_instance(
            40, 32, p_range=(1, 60), q_range=(1, 16), seed=seed
        ).jobs
        res = (
            random_alpha_reservations(32, 0.5, horizon=300, count=6, seed=seed)
            if with_reservations
            else ()
        )
        out.append(ReservationInstance(m=32, jobs=jobs, reservations=res))
    return out


def test_shelf_vs_lsrc(benchmark, report):
    rows = []
    geo = {}
    for label, with_res in (("no-res", False), ("with-res", True)):
        pool = _pool(with_res)
        for scheduler in (
            ListScheduler("lpt"),
            NextFitShelfScheduler(),
            FirstFitShelfScheduler(),
        ):
            ratios = [
                ratio_to_lower_bound(scheduler.schedule(inst))
                for inst in pool
            ]
            geo[(label, scheduler.name)] = geometric_mean(ratios)
            rows.append(
                {
                    "workload": label,
                    "algorithm": scheduler.name,
                    "geo_ratio": geo[(label, scheduler.name)],
                    "max_ratio": max(ratios),
                }
            )
    report(
        "shelf_ablation",
        format_table(rows, title="Shelf heuristics vs LSRC (m=32)"),
    )
    # --- shape assertions ---
    # Note: FF <= NF holds for shelf *counts* (checked below) but not
    # makespan-wise under reservations, where a wider merged shelf can
    # miss a gap a narrower one would fit; so only the robust claims:
    for label in ("no-res", "with-res"):
        assert geo[(label, "lsrc[lpt]")] <= geo[(label, "shelf-ff")] + 1e-9
        assert geo[(label, "lsrc[lpt]")] <= geo[(label, "shelf-nf")] + 1e-9
        assert geo[(label, "shelf-nf")] < 3.5, "shelves stay bounded"
        assert geo[(label, "shelf-ff")] < 3.5, "shelves stay bounded"

    pool = _pool(True)
    benchmark(lambda: FirstFitShelfScheduler().schedule(pool[0]).makespan)


def test_ff_uses_no_more_shelves_than_nf(benchmark, report):
    rows = []
    for seed in range(10):
        inst = uniform_instance(60, 32, q_range=(1, 16), seed=seed)
        nf = len(_build_shelves_nf(list(inst.jobs), inst.m))
        ff = len(_build_shelves_ff(list(inst.jobs), inst.m))
        rows.append({"seed": seed, "NF shelves": nf, "FF shelves": ff})
        assert ff <= nf
    report("shelf_counts", format_table(rows, title="Shelf counts NF vs FF"))

    inst = uniform_instance(200, 32, q_range=(1, 16), seed=0)
    benchmark(lambda: len(_build_shelves_ff(list(inst.jobs), inst.m)))
