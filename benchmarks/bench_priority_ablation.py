"""Extension — the conclusion's open question: do priority rules help?

"An immediate but not trivial perspective is to study some variants of
list scheduling that can improve the upper bound (for instance adding a
priority based on sorting the jobs by decreasing durations)."

This ablation runs LSRC under every priority rule over random and
Feitelson workloads (with reservations) and reports mean ratios to the
lower bound.  Shape claims: every rule obeys the same worst-case theory
(all are list schedules), and LPT/LAF-style rules improve on FIFO on
average — the effect the conclusion anticipates.
"""


from repro.algorithms import ListScheduler
from repro.analysis import format_table, geometric_mean
from repro.core import ReservationInstance, ratio_to_lower_bound
from repro.workloads import (
    feitelson_instance,
    random_alpha_reservations,
    uniform_instance,
)

RULES = ["fifo", "lpt", "spt", "laf", "saf", "widest", "narrowest"]


def _workloads():
    out = []
    for seed in range(6):
        jobs = uniform_instance(
            40, 32, p_range=(1, 60), q_range=(1, 16), seed=seed
        ).jobs
        res = random_alpha_reservations(
            32, 0.5, horizon=300, count=6, seed=seed
        )
        out.append(ReservationInstance(m=32, jobs=jobs, reservations=res))
    for seed in range(6):
        fei = feitelson_instance(40, 32, seed=seed)
        out.append(ReservationInstance(m=32, jobs=fei.jobs))
    return out


def test_priority_rule_ablation(benchmark, report):
    pool = _workloads()
    rows = []
    geo = {}
    for rule in RULES:
        scheduler = ListScheduler(rule)
        ratios = []
        for inst in pool:
            s = scheduler.schedule(inst)
            ratios.append(ratio_to_lower_bound(s))
        geo[rule] = geometric_mean(ratios)
        rows.append(
            {
                "rule": rule,
                "geo_ratio": geo[rule],
                "max_ratio": max(ratios),
            }
        )
    rows.sort(key=lambda r: r["geo_ratio"])
    report(
        "priority_ablation",
        format_table(rows, title="LSRC priority-rule ablation (m=32)"),
    )
    # --- shape assertions ---
    assert geo["lpt"] <= geo["fifo"] + 1e-9, "LPT should not lose to FIFO"
    for rule in RULES:
        assert geo[rule] < 2.0, "typical ratios stay far below worst case"

    inst = pool[0]
    benchmark(lambda: ListScheduler("lpt").schedule(inst).makespan)


def test_rules_agree_on_trivial_instances(benchmark):
    """On a single-job instance every rule produces the same schedule."""
    inst = uniform_instance(1, 8, seed=0)
    makespans = {
        rule: ListScheduler(rule).schedule(inst).makespan for rule in RULES
    }
    assert len(set(makespans.values())) == 1
    benchmark(lambda: ListScheduler("fifo").schedule(inst).makespan)
