"""Extension — per-instance worst list order versus the Figure 4 curves.

The paper bounds the worst case over *all* instances and orders; this
benchmark measures, on random α-restricted instances, the exact
per-instance worst-order ratio (all n! orders, exact optimum) and places
it against the two analytical curves: it must stay below ``2/α``
(Proposition 3) and random instances sit well below ``B1`` — only the
crafted Proposition 2 family pushes up against it.
"""

from fractions import Fraction


from repro.analysis import format_table
from repro.core import ReservationInstance
from repro.theory import (
    lower_bound_b1,
    proposition2_instance,
    upper_bound,
    worst_order_exhaustive,
)
from repro.workloads import (
    alpha_constrained_instance,
    random_alpha_reservations,
)


def _alpha_instance(alpha, seed):
    jobs = alpha_constrained_instance(
        5, 8, alpha, p_range=(1, 6), seed=seed
    ).jobs
    res = random_alpha_reservations(
        8, alpha, horizon=20, count=2, seed=seed + 7
    )
    inst = ReservationInstance(m=8, jobs=jobs, reservations=res)
    inst.validate_alpha(alpha)
    return inst


def test_worst_order_vs_figure4_curves(benchmark, report):
    rows = []
    for alpha in (Fraction(1, 2), Fraction(1, 4)):
        for seed in range(4):
            inst = _alpha_instance(alpha, seed)
            result = worst_order_exhaustive(inst)
            rows.append(
                {
                    "alpha": str(alpha),
                    "seed": seed,
                    "C*": result.optimal_makespan,
                    "worst order": float(result.worst_ratio),
                    "best order": float(result.best_ratio),
                    "B1": float(lower_bound_b1(alpha)),
                    "2/alpha": float(upper_bound(alpha)),
                }
            )
            # --- shape assertions ---
            assert result.worst_ratio <= float(upper_bound(alpha)) + 1e-9
            assert result.best_ratio >= 1.0 - 1e-9
    report(
        "worst_order",
        format_table(
            rows, title="Exact per-instance worst list order (n=5, m=8)"
        ),
    )
    inst = _alpha_instance(Fraction(1, 2), 0)
    benchmark(lambda: worst_order_exhaustive(inst).worst_ratio)


def test_proposition2_touches_lower_curve(benchmark, report):
    """On the crafted family the worst order reaches B1 exactly; random
    instances above never get close — the gap the curves cannot show."""
    fam = proposition2_instance(3)  # 5 jobs: exhaustive is feasible
    result = worst_order_exhaustive(fam.instance)
    b1 = lower_bound_b1(fam.alpha)
    achieved = Fraction(result.worst_makespan, result.optimal_makespan)
    assert achieved == b1 == Fraction(7, 3)
    assert result.optimal_makespan == fam.optimal_makespan
    report(
        "worst_order_prop2",
        f"Proposition 2 family k=3 (alpha=2/3): exhaustive worst order\n"
        f"  worst LSRC = {result.worst_makespan}, C* = "
        f"{result.optimal_makespan}, ratio = {achieved} = B1 = {b1}\n"
        f"  ({result.orders_explored} orders evaluated)\n",
    )

    benchmark(lambda: worst_order_exhaustive(fam.instance).worst_makespan)
