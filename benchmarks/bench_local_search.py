"""Extension — order local search (the conclusion's 'variants of list
scheduling').

Measures how much reordering the LSRC list buys over the static priority
rules, on random reservation workloads and on the paper's own adversarial
family (where the list order is worth a factor of ``2/α − 1 + α/2``).

Shape claims:

* local search never loses to its seed rule (it starts there);
* on the Proposition 2 family (k = 3) it recovers the optimum from the
  *worst* possible starting order;
* improvements on random workloads are real but modest — consistent with
  the paper's view that the order matters mostly in the worst case.
"""


from repro.algorithms import ListScheduler, LocalSearchScheduler
from repro.analysis import format_table, geometric_mean
from repro.core import ReservationInstance, ratio_to_lower_bound
from repro.theory import proposition2_instance
from repro.workloads import random_alpha_reservations, uniform_instance


def _pool():
    out = []
    for seed in range(6):
        jobs = uniform_instance(
            18, 16, p_range=(1, 30), q_range=(1, 8), seed=seed
        ).jobs
        res = random_alpha_reservations(
            16, 0.5, horizon=150, count=4, seed=seed + 40
        )
        out.append(ReservationInstance(m=16, jobs=jobs, reservations=res))
    return out


def test_local_search_vs_static_rules(benchmark, report):
    pool = _pool()
    rows = []
    ratios = {}
    for label, scheduler_factory in (
        ("lsrc[fifo]", lambda: ListScheduler("fifo")),
        ("lsrc[lpt]", lambda: ListScheduler("lpt")),
        ("lsrc-ls", lambda: LocalSearchScheduler(budget=200, seed=0)),
    ):
        rs = []
        for inst in pool:
            schedule = scheduler_factory().schedule(inst)
            schedule.verify()
            rs.append(ratio_to_lower_bound(schedule))
        ratios[label] = geometric_mean(rs)
        rows.append(
            {"algorithm": label, "geo_ratio": ratios[label], "max": max(rs)}
        )
    report(
        "local_search",
        format_table(rows, title="Order local search vs static rules"),
    )
    # --- shape assertions ---
    assert ratios["lsrc-ls"] <= ratios["lsrc[lpt]"] + 1e-9
    assert ratios["lsrc-ls"] <= ratios["lsrc[fifo]"] + 1e-9

    inst = pool[0]
    benchmark(
        lambda: LocalSearchScheduler(budget=60, seed=0).schedule(inst).makespan
    )


def test_local_search_escapes_proposition2_trap(benchmark, report):
    fam = proposition2_instance(3)
    bad = ListScheduler().schedule(fam.instance)  # instance order = bad-ish
    searcher = LocalSearchScheduler(start_rule="fifo", budget=400, seed=0)
    improved = searcher.schedule(fam.instance)
    improved.verify()
    assert improved.makespan == fam.optimal_makespan
    report(
        "local_search_prop2",
        "Proposition 2 family, k=3 (alpha=2/3, m=18):\n"
        f"  LSRC (instance order): Cmax={bad.makespan}\n"
        f"  LSRC + local search:   Cmax={improved.makespan} "
        f"(= optimum {fam.optimal_makespan})\n"
        f"  evaluations used: {searcher.last_stats.evaluations}\n",
    )

    benchmark(
        lambda: LocalSearchScheduler(
            start_rule="fifo", budget=150, seed=0
        ).schedule(fam.instance).makespan
    )
