"""Theorem 2 / Lemma 1 (appendix) — Graham's bound, executed.

The appendix re-proves ``Cmax(LSRC) <= (2 - 1/m) C*max`` via Lemma 1
(``r(t) + r(t') >= m + 1`` whenever ``t' >= t + pmax``).  Reproduction:

* Lemma 1 checked exhaustively on LSRC schedules of random instances;
* the integral inequality chain ``(m+1)(1-x)C* <= X <= W - x C*``
  measured on concrete schedules;
* the end-to-end bound against exact optima, plus its tightness on the
  classical family (ratio exactly ``2 - 1/m``).
"""


from repro.algorithms import ListScheduler, exhaustive_optimal, list_schedule
from repro.analysis import describe, format_table
from repro.theory import (
    graham_ratio,
    graham_tight_instance,
    lemma1_violations,
    work_area_inequality,
)
from repro.workloads import uniform_instance


def test_thm2_bound_against_exact_optimum(benchmark, report):
    rows = []
    ratios = []
    for seed in range(12):
        inst = uniform_instance(5, 4, p_range=(1, 6), seed=seed)
        s = ListScheduler().schedule(inst)
        cstar = exhaustive_optimal(inst).makespan
        ratio = s.makespan / cstar
        ratios.append(ratio)
        guarantee = float(graham_ratio(inst.m))
        rows.append(
            {
                "seed": seed,
                "C*": cstar,
                "LSRC": s.makespan,
                "ratio": ratio,
                "2-1/m": guarantee,
            }
        )
        # --- shape assertion (Theorem 2) ---
        assert ratio <= guarantee + 1e-9
    text = format_table(rows, title="Theorem 2 on random instances (m=4)")
    text += f"\nempirical ratio: {describe(ratios)}\n"
    report("thm2_random", text)

    inst = uniform_instance(30, 8, seed=0)
    benchmark(lambda: ListScheduler().schedule(inst).makespan)


def test_thm2_lemma1_certificates(benchmark, report):
    """Lemma 1 never violated by LSRC; certificate checking is cheap."""
    checked = 0
    for seed in range(25):
        inst = uniform_instance(8, 8, p_range=(1, 9), seed=seed)
        s = ListScheduler().schedule(inst)
        assert lemma1_violations(s) == [], f"seed {seed}"
        checked += 1
    report(
        "thm2_lemma1",
        f"Lemma 1 verified on {checked} LSRC schedules (m=8, n=8): "
        "0 violations\n",
    )

    inst = uniform_instance(20, 8, seed=1)
    s = ListScheduler().schedule(inst)
    benchmark(lambda: lemma1_violations(s))


def test_thm2_integral_inequality(benchmark, report):
    """The proof's integral chain measured on real schedules."""
    rows = []
    for seed in range(10):
        inst = uniform_instance(6, 4, p_range=(1, 6), seed=seed)
        s = ListScheduler().schedule(inst)
        cstar = exhaustive_optimal(inst).makespan
        X, lower, upper = work_area_inequality(s, cstar)
        rows.append(
            {"seed": seed, "X": float(X), "(m+1)(1-x)C*": float(lower),
             "W-xC*": float(upper)}
        )
        assert lower - 1e-9 <= X <= upper + 1e-9
    report(
        "thm2_integral",
        format_table(rows, title="Theorem 2 proof inequalities (m=4)"),
    )

    inst = uniform_instance(6, 4, seed=3)
    s = ListScheduler().schedule(inst)
    cstar = exhaustive_optimal(inst).makespan
    benchmark(lambda: work_area_inequality(s, cstar))


def test_thm2_tightness_family(benchmark, report):
    """Ratio exactly 2 - 1/m on the classical family, for growing m."""
    rows = []
    for m in (2, 4, 8, 16):
        fam = graham_tight_instance(m)
        bad = list_schedule(fam.instance, order=fam.bad_order)
        assert bad.makespan == 2 * m - 1
        assert fam.optimal_schedule().makespan == m
        rows.append(
            {
                "m": m,
                "C*": m,
                "LSRC(bad)": bad.makespan,
                "ratio": bad.makespan / m,
                "2-1/m": float(graham_ratio(m)),
            }
        )
    report("thm2_tightness", format_table(rows, title="2 - 1/m tightness"))

    fam = graham_tight_instance(16)
    benchmark(
        lambda: list_schedule(fam.instance, order=fam.bad_order).makespan
    )
