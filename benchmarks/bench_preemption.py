"""Extension — the price of non-preemption (Section 1.3's contrast).

The paper's related work "considers models where preemption is allowed";
its own model forbids it.  This benchmark quantifies the difference on
sequential workloads: the exact preemptive optimum (Schmidt's condition,
constructively attained) versus non-preemptive LSRC, as reservation
pressure grows.

Shape claims:

* LSRC is always within ``2 - 1/m`` of the preemptive optimum on
  reservation-free workloads (the preemptive optimum is itself a lower
  bound on ``C*max``);
* the gap widens with reservation pressure — the inability to straddle a
  blocked window is exactly what the paper's Theorem 1 gadget exploits;
* the preemptive construction itself is cheap and exact.
"""


from repro.algorithms import (
    ListScheduler,
    preemptive_makespan,
    preemptive_schedule,
    price_of_nonpreemption,
)
from repro.analysis import format_table, geometric_mean
from repro.core import Job, Reservation, ReservationInstance
from repro.theory import graham_ratio
from repro.workloads import uniform_instance


def _sequential_instance(m, n, seed, reservation_every=None):
    base = uniform_instance(n, m, p_range=(1, 20), q_range=(1, 1), seed=seed)
    reservations = []
    if reservation_every:
        # periodic half-machine maintenance windows
        q = max(1, m // 2)
        for i in range(4):
            reservations.append(
                Reservation(
                    id=f"r{i}",
                    start=reservation_every * (i + 1),
                    p=reservation_every // 2,
                    q=q,
                )
            )
    return ReservationInstance(
        m=m, jobs=base.jobs, reservations=tuple(reservations)
    )


def test_price_of_nonpreemption_grows_with_reservations(benchmark, report):
    rows = []
    geo = {}
    for label, every in (("none", None), ("sparse", 40), ("dense", 16)):
        ratios = []
        for seed in range(8):
            inst = _sequential_instance(8, 24, seed, reservation_every=every)
            ratios.append(float(price_of_nonpreemption(inst)))
        geo[label] = geometric_mean(ratios)
        rows.append(
            {
                "reservations": label,
                "geo price": geo[label],
                "max price": max(ratios),
            }
        )
        # LSRC within Graham of the preemptive LOWER bound, reservation-free
        if every is None:
            assert max(ratios) <= float(graham_ratio(8)) + 1e-9
    report(
        "preemption_price",
        format_table(rows, title="Price of non-preemption (m=8, n=24)"),
    )
    # --- shape assertion: reservations widen the gap on average ---
    assert geo["dense"] >= geo["none"] - 0.02

    inst = _sequential_instance(8, 24, 0, reservation_every=16)
    benchmark(lambda: price_of_nonpreemption(inst))


def test_preemptive_construction_exact_and_fast(benchmark, report):
    inst = _sequential_instance(16, 60, 3, reservation_every=25)
    bound = preemptive_makespan(inst)
    schedule = preemptive_schedule(inst)
    schedule.verify()
    assert schedule.makespan == bound
    report(
        "preemption_construction",
        f"Schmidt optimum attained exactly: T = {bound} "
        f"({len(schedule.pieces)} pieces, "
        f"{schedule.preemption_count()} preemptions, n = 60, m = 16)\n",
    )

    benchmark(lambda: preemptive_schedule(inst).makespan)


def test_single_machine_theorem1_gap(benchmark, report):
    """On the Figure 1 geometry (m=1 with holes) preemption closes most of
    the gap the reduction exploits: a preemptive job flows around the
    reservations, a non-preemptive one must fit between them."""
    inst = ReservationInstance(
        m=1,
        jobs=(Job(id=0, p=9, q=1),),
        reservations=(
            Reservation(id="r1", start=3, p=1, q=1),
            Reservation(id="r2", start=7, p=1, q=1),
            Reservation(id="r3", start=11, p=1, q=1),
        ),
    )
    preemptive = preemptive_makespan(inst)
    lsrc = ListScheduler().schedule(inst).makespan  # must wait for a 9-gap
    # gaps [0,3), [4,7), [8,11) hold exactly 9 units: finishes at 11
    assert preemptive == 11
    assert lsrc == 21  # starts after the last reservation
    report(
        "preemption_thm1_gap",
        "Figure 1 geometry, one 9-long job, unit holes at 3/7/11:\n"
        f"  preemptive optimum: {preemptive} (flows around the holes)\n"
        f"  non-preemptive LSRC: {lsrc} (waits for a gap of length 9)\n"
        f"  ratio: {lsrc}/{preemptive}\n",
    )

    benchmark(lambda: preemptive_makespan(inst))
