"""Figure 2 / Proposition 1 — non-increasing reservations.

Figure 2 draws the transformation: a non-increasing staircase of
reservations becomes (i) an availability frozen at ``C*max`` (``I'``) and
(ii) head-of-list rigid jobs (``I''``).  Proposition 1 concludes
``Cmax(LSRC) <= (2 - 1/m(C*max)) C*max``.

Reproduction, on random staircase instances:

* the structural identity: LSRC schedules ``I'`` and ``I''`` identically
  when the staircase jobs head the list;
* the bound: LSRC's ratio to the exact optimum never exceeds
  ``2 - 1/m(C*)`` (and a fortiori ``2 - 1/m``).
"""


from repro.algorithms import ListScheduler, branch_and_bound
from repro.analysis import describe, format_table
from repro.core import ReservationInstance
from repro.theory import nonincreasing_ratio, proposition1_certify
from repro.workloads import nonincreasing_staircase, uniform_instance

CASES = [
    # (m, n jobs, staircase steps, seed)
    (8, 5, 2, 0),
    (8, 6, 3, 1),
    (16, 6, 3, 2),
    (16, 5, 4, 3),
    (32, 6, 4, 4),
]


def _make(m, n, steps, seed):
    jobs = uniform_instance(
        n, m, p_range=(1, 6), q_range=(1, max(1, m // 4)), seed=seed
    ).jobs
    stairs = nonincreasing_staircase(m, steps, horizon=10, seed=seed)
    return ReservationInstance(m=m, jobs=jobs, reservations=stairs)


def test_fig2_proposition1_bound_and_identity(benchmark, report):
    rows = []
    ratios = []
    for m, n, steps, seed in CASES:
        inst = _make(m, n, steps, seed)
        assert inst.has_nonincreasing_reservations()
        cstar = branch_and_bound(inst).makespan
        cert = proposition1_certify(inst, cstar)
        rows.append(
            {
                "m": m,
                "n": n,
                "steps": steps,
                "C*": cstar,
                "LSRC": cert.lsrc_makespan,
                "ratio": float(cert.ratio),
                "2-1/m(C*)": float(cert.guarantee),
                "I'=I'' identity": cert.head_schedule_matches,
            }
        )
        ratios.append(float(cert.ratio))
        # --- shape assertions (Proposition 1) ---
        assert cert.holds, f"Proposition 1 failed on m={m}, seed={seed}"
    summary = describe(ratios)
    text = format_table(rows, title="Proposition 1 on random staircases")
    text += f"\nempirical ratio: {summary}\n"
    report("fig2_nonincreasing", text)

    inst = _make(16, 6, 3, 2)
    benchmark(lambda: ListScheduler().schedule(inst).makespan)


def test_fig2_guarantee_is_monotone_in_horizon_capacity(benchmark):
    """2 - 1/m(C*) weakens (rises) as availability at C* grows — the
    quantity the figure's staircase geometry controls."""
    inst = _make(16, 6, 4, 5)
    profile = inst.availability_profile()
    horizons = sorted({0.5} | {float(t) + 0.5 for t in profile.breakpoints})
    values = []
    for h in horizons:
        if profile.capacity_at(h) >= 1:
            values.append(float(nonincreasing_ratio(inst, h)))
    assert values == sorted(values), "guarantee must grow with availability"

    benchmark(lambda: [nonincreasing_ratio(inst, h) for h in horizons[1:]])
