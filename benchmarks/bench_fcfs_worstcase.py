"""Section 2.2 — FCFS has no constant guarantee.

"on a machine with m nodes, it is possible to build an instance with
optimal makespan 1, and whose resulting FCFS schedule has makespan m."

Reproduction: run real FCFS on the constructed family and show the ratio
marching towards ``m`` as the narrow jobs lengthen, while LSRC
(aggressive backfilling) stays within Graham's bound on the same
instances.
"""


from repro.algorithms import ListScheduler, fcfs_schedule
from repro.analysis import format_table
from repro.core import lower_bound
from repro.theory import fcfs_worstcase_instance, graham_ratio


def test_fcfs_ratio_approaches_m(benchmark, report):
    rows = []
    for m in (4, 8, 16):
        for K in (10, 100, 1000):
            fam = fcfs_worstcase_instance(m, K=K)
            s = fcfs_schedule(fam.instance)
            assert s.makespan == fam.fcfs_makespan
            assert lower_bound(fam.instance) == fam.optimal_makespan
            ratio = s.makespan / fam.optimal_makespan
            rows.append(
                {"m": m, "K": K, "C*": fam.optimal_makespan,
                 "FCFS": s.makespan, "ratio": ratio}
            )
    # --- shape assertions ---
    for m in (4, 8, 16):
        series = [r["ratio"] for r in rows if r["m"] == m]
        assert series == sorted(series), "ratio grows with K"
        assert series[-1] > m * 0.95, f"ratio approaches m={m}"
    report(
        "fcfs_worstcase",
        format_table(rows, title="FCFS worst-case family (Section 2.2)"),
    )

    fam = fcfs_worstcase_instance(16, K=100)
    benchmark(lambda: fcfs_schedule(fam.instance).makespan)


def test_lsrc_immune_to_the_fcfs_trap(benchmark, report):
    """The same instances leave LSRC within 2 - 1/m of optimal —
    the contrast motivating the paper's focus on list scheduling."""
    rows = []
    for m in (4, 8, 16):
        fam = fcfs_worstcase_instance(m, K=100)
        ls = ListScheduler().schedule(fam.instance)
        ls.verify()
        ratio = ls.makespan / fam.optimal_makespan
        rows.append(
            {"m": m, "LSRC": ls.makespan, "C*": fam.optimal_makespan,
             "ratio": ratio, "2-1/m": float(graham_ratio(m))}
        )
        assert ratio <= float(graham_ratio(m)) + 1e-9
    report("fcfs_vs_lsrc", format_table(rows, title="LSRC on the FCFS trap"))

    fam = fcfs_worstcase_instance(16, K=100)
    benchmark(lambda: ListScheduler().schedule(fam.instance).makespan)
