#!/usr/bin/env python3
"""The registered benchmark suite: every benchmark behind one front door.

The repo grew 17 ad-hoc ``bench_*.py`` entry points — 15 pytest-benchmark
figure/engineering suites plus the standalone profile-backend harness.
This module consolidates them behind a single registry so one command
runs any of them, quick or full, and the JSON-producing harnesses feed a
*perf trajectory* that is tracked PR-over-PR:

* ``python benchmarks/suite.py --list`` — what exists;
* ``python benchmarks/suite.py core-throughput --quick`` — one bench
  (also reachable as ``repro bench core-throughput --quick``);
* ``python benchmarks/suite.py all`` — everything, pytest suites
  included;
* ``python benchmarks/suite.py --check`` — run the JSON harnesses and
  fail when any scenario's speedup ratio regresses more than
  ``REGRESSION_TOLERANCE`` against the scale-matched baseline checked
  into the repo (machine-independent: ratios, not wall-clock, are
  compared).

``core-throughput`` is the headline harness of the integer-timebase fast
path: it schedules the 10k-job maintenance trace with the exact
reference engines and with the incremental integer sweep
(:mod:`repro.core.timebase`), asserts the schedules are *identical*, and
appends an entry to ``BENCH_core_throughput.json`` — the acceptance gate
is >= 5x end-to-end LSRC speedup over the tree-backend number recorded
in ``BENCH_profile_backends.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Optional

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(BENCH_DIR))

#: A scenario "regresses" when its measured speedup ratio falls below
#: baseline / tolerance (1.5x headroom absorbs machine noise).
REGRESSION_TOLERANCE = 1.5

#: Baseline ratios are clamped to this before the floor is computed: the
#: gate's job is catching a fast path that *lost its advantage* (ratio
#: collapsing toward 1x), and very large ratios (50-150x) wobble with
#: hardware constants and sub-10ms denominators — min(baseline, cap) /
#: tolerance keeps the check meaningful without being flaky.  Quick runs
#: are constant-dominated (sub-10ms int-path timings), so their cap is
#: lower still: the floor degrades to "the fast path is still clearly
#: faster", which is the only claim a quick run can support.
RATIO_CHECK_CAP = 10.0
QUICK_RATIO_CHECK_CAP = 4.0

CORE_THROUGHPUT_JSON = REPO_ROOT / "BENCH_core_throughput.json"
PROFILE_BACKENDS_JSON = REPO_ROOT / "BENCH_profile_backends.json"
REPLAY_THROUGHPUT_JSON = REPO_ROOT / "BENCH_replay_throughput.json"

#: Bounded-memory gates of the replay harness: the 1M-job run may not
#: exceed these multiples/offsets of the 100k-job run's peaks (the
#: trace prefixes agree, so a truly bounded engine stays flat).
MEMORY_SEGMENT_FACTOR = 4
MEMORY_QUEUE_FACTOR = 10
MEMORY_SLACK = 256
MEMORY_RSS_LIMIT_MB = 100


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark.

    ``runner(quick, repeats, out_dir)`` returns a JSON-safe report (or
    ``None`` for pass/fail-only suites).  ``baseline`` names the
    checked-in JSON whose scale-matched entry ``--check`` compares
    speedup ratios against.
    """

    name: str
    description: str
    runner: Callable[[bool, int, Optional[pathlib.Path]], Optional[Dict]]
    baseline: Optional[pathlib.Path] = None
    tags: tuple = field(default_factory=tuple)


SUITE: Dict[str, Benchmark] = {}


def register_bench(bench: Benchmark) -> Benchmark:
    SUITE[bench.name] = bench
    return bench


def available_benchmarks() -> List[str]:
    return sorted(SUITE)


# ---------------------------------------------------------------------------
# core-throughput harness (the integer-timebase headline numbers)
# ---------------------------------------------------------------------------

def _best_of(repeats: int, fn):
    """(best seconds, last result) over ``repeats`` timed calls."""
    best = None
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _speedup_scenario(label, exact_fn, fast_fn, repeats, extra=None):
    """Time exact vs fast engines and *assert identical schedules*."""
    exact_s, exact_schedule = _best_of(repeats, exact_fn)
    fast_s, fast_schedule = _best_of(repeats, fast_fn)
    identical = exact_schedule.starts == fast_schedule.starts
    assert identical, (
        f"{label}: integer-timebase schedule diverged from the exact path "
        "— differential guarantee violated"
    )
    scenario = {
        "exact_s": round(exact_s, 4),
        "int_s": round(fast_s, 4),
        "speedup": round(exact_s / fast_s, 2) if fast_s > 0 else float("inf"),
        "identical_schedules": True,
    }
    if extra:
        scenario.update(extra)
    return scenario


def bench_core_throughput(
    quick: bool, repeats: int, out_dir: Optional[pathlib.Path]
) -> Dict:
    """Exact engines vs the incremental integer sweep, end to end."""
    from bench_profile_backends import make_trace

    from repro.algorithms import ConservativeBackfillScheduler, ListScheduler

    n_jobs = 800 if quick else 10_000
    n_res = 80 if quick else 1_000
    m, seed = 256, 7
    print(f"building trace: {n_jobs} jobs, {n_res} reservations, m={m}")
    instance = make_trace(n_jobs, n_res, m, seed)

    scenarios: Dict[str, Dict] = {}

    print("scenario 1/3: LSRC, exact tree-backend sweep vs integer sweep ...")
    scenarios["lsrc_scheduling"] = _speedup_scenario(
        "lsrc_scheduling",
        lambda: ListScheduler(
            profile_backend="tree", timebase="exact"
        ).schedule(instance),
        lambda: ListScheduler(timebase="auto").schedule(instance),
        repeats,
    )
    # The acceptance gate: the int path vs the *checked-in* tree-backend
    # scheduling number of BENCH_profile_backends.json (same trace).
    baseline_tree = _profile_backends_tree_baseline(quick)
    if baseline_tree is not None:
        scenarios["lsrc_scheduling"]["baseline_tree_s"] = baseline_tree
        scenarios["lsrc_scheduling"]["speedup_vs_baseline_tree"] = round(
            baseline_tree / scenarios["lsrc_scheduling"]["int_s"], 2
        )

    print("scenario 2/3: conservative backfilling, exact tree vs integer ...")
    scenarios["backfill_cons"] = _speedup_scenario(
        "backfill_cons",
        lambda: ConservativeBackfillScheduler(
            profile_backend="tree", timebase="exact"
        ).schedule(instance),
        lambda: ConservativeBackfillScheduler(timebase="auto").schedule(
            instance
        ),
        repeats,
    )

    # Fraction-timed twin of the trace: this is where the timebase earns
    # its name — the exact path pays a gcd per arithmetic op, the fast
    # path normalises once (scale lcm(3)=3) and runs on machine ints.
    frac_jobs = 200 if quick else 2_000
    frac_res = 30 if quick else 200
    print(f"scenario 3/3: Fraction-timed trace ({frac_jobs} jobs), "
          "exact vs integer ...")
    frac_instance = make_trace(frac_jobs, frac_res, m, seed).scaled(
        Fraction(1, 3)
    )
    scenarios["lsrc_fraction_times"] = _speedup_scenario(
        "lsrc_fraction_times",
        lambda: ListScheduler(
            profile_backend="tree", timebase="exact"
        ).schedule(frac_instance),
        lambda: ListScheduler(timebase="auto").schedule(frac_instance),
        repeats,
        extra={"time_scale_lcm": 3},
    )

    for name, scenario in scenarios.items():
        line = (f"  {name}: exact {scenario['exact_s']:.3f}s  "
                f"int {scenario['int_s']:.3f}s  "
                f"speedup {scenario['speedup']:.1f}x (schedules identical)")
        if "speedup_vs_baseline_tree" in scenario:
            line += (f"  [{scenario['speedup_vs_baseline_tree']:.1f}x vs "
                     "checked-in tree baseline]")
        print(line)

    entry = {
        "quick": quick,
        "config": {
            "jobs": n_jobs,
            "reservations": n_res,
            "fraction_jobs": frac_jobs,
            "machines": m,
            "seed": seed,
            "repeats": repeats,
        },
        "scenarios": scenarios,
    }
    _append_history(entry, out_dir)

    gate = scenarios["lsrc_scheduling"].get("speedup_vs_baseline_tree")
    if not quick and gate is not None and gate < 5:
        print(
            f"WARNING: LSRC int-path speedup {gate}x is below the 5x "
            "acceptance target vs BENCH_profile_backends.json",
            file=sys.stderr,
        )
        raise SystemExit(1)
    return entry


def _rss_mb() -> int:
    """Peak resident set size of this process in MB (high-water mark)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes there, KB on Linux
        peak //= 1024
    return peak // 1024


def bench_replay_throughput(
    quick: bool, repeats: int, out_dir: Optional[pathlib.Path]
) -> Dict:
    """Million-job streaming replay: throughput + bounded-memory gates.

    Three scenario families, all on the deterministic ``steady``
    synthetic trace (whose 100k-job trace is an exact prefix of the
    1M-job trace, so cross-scale comparisons are apples to apples):

    * ``replay_1m_<policy>`` — replay 100k then 1M jobs and **assert**
      the peak profile segments, peak queue length and RSS high-water
      stay flat across the 10x scale jump (the bounded-memory gate);
    * ``ingest_100k_gz`` — parse-only pass of a gzipped 100k-job SWF
      file through the chunked streaming reader;
    * ``identity_100k`` — stream the same gz file through the replay
      engine and **assert** byte-identical start times and int-exact
      metrics against ``read_swf`` + ``OnlineSimulation``.

    The 1M-job leg runs once regardless of ``--repeats`` (it is its own
    statistics).  Results append to ``BENCH_replay_throughput.json``;
    there is no speedup-ratio gate — the assertions are the gate, and
    jobs/sec is recorded as a trajectory, not compared across machines.
    """
    import gzip
    import tempfile

    from repro.core.metrics import summarize
    from repro.simulation import OnlineSimulation, replay, replay_swf
    from repro.workloads.swf import (
        iter_swf,
        read_swf,
        save_swf_trace,
        synth_swf_jobs,
    )

    m, seed, profile = 256, 0, "steady"
    small_n, big_n = 100_000, 1_000_000
    policies = ("easy",) if quick else ("easy", "greedy")
    scenarios: Dict[str, Dict] = {}

    for policy in policies:
        print(f"replay {small_n} then {big_n} jobs ({profile}, {policy}) ...")
        small = replay(
            synth_swf_jobs(profile, small_n, m=m, seed=seed), m, policy=policy
        )
        rss_small = _rss_mb()
        big = replay(
            synth_swf_jobs(profile, big_n, m=m, seed=seed), m, policy=policy
        )
        rss_big = _rss_mb()
        st, bt = small.totals, big.totals
        seg_limit = (
            MEMORY_SEGMENT_FACTOR * st["peak_profile_segments"] + MEMORY_SLACK
        )
        queue_limit = (
            MEMORY_QUEUE_FACTOR * st["peak_queue_length"] + MEMORY_SLACK
        )
        rss_growth = rss_big - rss_small
        assert bt["peak_profile_segments"] <= seg_limit, (
            f"profile grew with trace length: {bt['peak_profile_segments']} "
            f"segments at 1M vs {st['peak_profile_segments']} at 100k "
            "— bounded-memory guarantee violated"
        )
        assert bt["peak_queue_length"] <= queue_limit, (
            f"queue grew with trace length: {bt['peak_queue_length']} at 1M "
            f"vs {st['peak_queue_length']} at 100k"
        )
        # ru_maxrss is a process-lifetime high-water mark, so the RSS
        # delta is only meaningful before any 1M-job leg has raised it —
        # i.e. for the first policy; later policies rely on the
        # structural (per-run) segment/queue gates above
        rss_gate = policy == policies[0]
        if rss_gate:
            assert rss_growth <= MEMORY_RSS_LIMIT_MB, (
                f"peak RSS grew {rss_growth}MB between the 100k and 1M "
                f"runs (limit {MEMORY_RSS_LIMIT_MB}MB) — "
                "trace-length-dependent memory detected"
            )
        scenarios[f"replay_1m_{policy}"] = {
            "jobs": big_n,
            "jobs_per_sec": round(big_n / bt["elapsed_seconds"]),
            "jobs_per_sec_100k": round(small_n / st["elapsed_seconds"]),
            "peak_profile_segments": bt["peak_profile_segments"],
            "peak_profile_segments_100k": st["peak_profile_segments"],
            "peak_queue_length": bt["peak_queue_length"],
            "peak_rss_mb": rss_big,
            "rss_growth_mb": rss_growth,
            "rss_gate_applied": rss_gate,
            "utilization": round(bt["utilization"], 4),
            "ratio_lb": round(bt["ratio_lb"], 4),
            "bounded_memory": True,
        }
        print(
            f"  {policy}: {scenarios[f'replay_1m_{policy}']['jobs_per_sec']:,}"
            f" jobs/s at 1M, peak segments {bt['peak_profile_segments']}, "
            f"RSS growth {rss_growth}MB"
            + (" (bounded)" if rss_gate else " (structural gates only)")
        )

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = pathlib.Path(tmp) / "steady_100k.swf.gz"
        save_swf_trace(
            trace_path, synth_swf_jobs(profile, small_n, m=m, seed=seed), m,
            note=f"{small_n} jobs (steady scenario pack)",
        )
        print(f"parse-only pass of {trace_path.name} ...")
        best_parse, parsed = _best_of(
            repeats, lambda: sum(1 for _ in iter_swf(trace_path))
        )
        scenarios["ingest_100k_gz"] = {
            "jobs": parsed,
            "jobs_per_sec": round(parsed / best_parse),
            "gz_bytes": trace_path.stat().st_size,
        }
        print(f"  parsed {parsed} jobs at "
              f"{scenarios['ingest_100k_gz']['jobs_per_sec']:,} jobs/s")

        print("identity: streamed replay vs read_swf + OnlineSimulation ...")
        streamed = replay_swf(trace_path, policy="easy", record_starts=True)
        with gzip.open(trace_path, "rt") as fh:
            instance = read_swf(fh).instance
        t0 = time.perf_counter()
        reference = OnlineSimulation(instance, policy="easy").run()
        in_memory_s = time.perf_counter() - t0
        assert streamed.starts == reference.schedule.starts, (
            "streamed replay start times diverged from the in-memory "
            "engine — differential guarantee violated"
        )
        summary = summarize(reference.schedule)
        for name, value in (
            ("makespan", summary.makespan),
            ("total_work", summary.total_work),
            ("utilization", summary.utilization),
            ("mean_wait", summary.mean_wait),
            ("max_wait", summary.max_wait),
        ):
            assert streamed.totals[name] == value, (
                f"streamed {name} {streamed.totals[name]!r} != "
                f"in-memory {value!r}"
            )
        scenarios["identity_100k"] = {
            "jobs": small_n,
            "identical_schedules": True,
            "identical_metrics": True,
            "streamed_s": round(streamed.totals["elapsed_seconds"], 2),
            "in_memory_s": round(in_memory_s, 2),
        }
        print(
            f"  identical schedules + metrics; streamed "
            f"{scenarios['identity_100k']['streamed_s']}s vs in-memory "
            f"{scenarios['identity_100k']['in_memory_s']}s"
        )

    entry = {
        "quick": quick,
        "config": {
            "profile": profile,
            "machines": m,
            "seed": seed,
            "small_jobs": small_n,
            "big_jobs": big_n,
            "policies": list(policies),
            "repeats": repeats,
        },
        "scenarios": scenarios,
    }
    _append_history(entry, out_dir, REPLAY_THROUGHPUT_JSON)
    return entry


def _profile_backends_tree_baseline(quick: bool) -> Optional[float]:
    """The checked-in tree-backend scheduling seconds, scale-matched."""
    if quick or not PROFILE_BACKENDS_JSON.exists():
        return None  # the checked-in file records the full-scale run only
    data = json.loads(PROFILE_BACKENDS_JSON.read_text())
    if data.get("config", {}).get("quick"):
        return None
    return data.get("scenarios", {}).get("scheduling", {}).get("tree")


def _append_history(
    entry: Dict, out_dir: Optional[pathlib.Path],
    trajectory: pathlib.Path = CORE_THROUGHPUT_JSON,
) -> None:
    """Append one run to a perf-trajectory file.

    Runs append to the checked-in ``BENCH_*.json`` trajectory unless
    ``--out`` redirects them — CI passes ``--out`` so checkout state
    stays pristine.  Entries carry their ``quick`` flag, and the
    regression check only ever compares scale-matched entries.
    """
    path = (pathlib.Path(out_dir) / trajectory.name
            if out_dir is not None else trajectory)
    report = {"history": []}
    if path.exists():
        try:
            report = json.loads(path.read_text())
        except json.JSONDecodeError:
            pass
    report.setdefault("history", []).append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"appended run to {path}")


# ---------------------------------------------------------------------------
# wrappers for the pre-existing harness + pytest suites
# ---------------------------------------------------------------------------

def _run_profile_backends(
    quick: bool, repeats: int, out_dir: Optional[pathlib.Path]
) -> Dict:
    import bench_profile_backends

    argv = ["--repeats", str(repeats)]
    if quick:
        argv.append("--quick")
        # quick numbers are constant-dominated; never clobber the
        # checked-in full-scale baseline with them
        out = (pathlib.Path(out_dir) if out_dir is not None
               else pathlib.Path("/tmp")) / PROFILE_BACKENDS_JSON.name
        argv += ["--out", str(out)]
    elif out_dir is not None:
        out = pathlib.Path(out_dir) / PROFILE_BACKENDS_JSON.name
        argv += ["--out", str(out)]
    else:
        out = PROFILE_BACKENDS_JSON
    rc = bench_profile_backends.main(argv)
    if rc != 0:
        raise SystemExit(rc)
    return json.loads(pathlib.Path(out).read_text())


def _make_pytest_runner(path: pathlib.Path):
    def run(quick: bool, repeats: int, out_dir: Optional[pathlib.Path]):
        cmd = [sys.executable, "-m", "pytest", str(path), "-q"]
        if quick:
            cmd.append("--benchmark-disable")  # assertions only, no timing
        print("$", " ".join(cmd))
        proc = subprocess.run(cmd, cwd=str(REPO_ROOT))
        if proc.returncode != 0:
            raise SystemExit(proc.returncode)
        return {"passed": True, "pytest": path.name}

    return run


register_bench(Benchmark(
    name="core-throughput",
    description="exact engines vs the incremental integer sweep "
                "(LSRC + conservative backfilling + Fraction trace); "
                "appends to BENCH_core_throughput.json",
    runner=bench_core_throughput,
    baseline=CORE_THROUGHPUT_JSON,
    tags=("json",),
))

register_bench(Benchmark(
    name="replay-throughput",
    description="streaming 1M-job trace replay: jobs/sec, bounded-memory "
                "assertions, streamed-vs-in-memory identity at 100k; "
                "appends to BENCH_replay_throughput.json",
    runner=bench_replay_throughput,
    baseline=REPLAY_THROUGHPUT_JSON,
    tags=("json",),
))

register_bench(Benchmark(
    name="profile-backends",
    description="ListProfile vs TreeProfile on large traces; writes "
                "BENCH_profile_backends.json",
    runner=_run_profile_backends,
    baseline=PROFILE_BACKENDS_JSON,
    tags=("json",),
))

for _path in sorted(BENCH_DIR.glob("bench_*.py")):
    if _path.name == "bench_profile_backends.py":
        continue  # registered above as a first-class harness
    _name = _path.stem.replace("bench_", "").replace("_", "-")
    register_bench(Benchmark(
        name=_name,
        description=f"pytest-benchmark suite {_path.name}",
        runner=_make_pytest_runner(_path),
        tags=("pytest",),
    ))


# ---------------------------------------------------------------------------
# regression check
# ---------------------------------------------------------------------------

def _scenario_ratios(scenarios: Dict) -> Dict[str, float]:
    """The machine-independent speedup ratio per scenario."""
    out = {}
    for name, scenario in scenarios.items():
        if isinstance(scenario, dict) and "speedup" in scenario:
            out[name] = float(scenario["speedup"])
    return out


def _baseline_scenarios(bench: Benchmark, quick: bool) -> Optional[Dict]:
    """The checked-in, scale-matched scenario block for ``bench``."""
    if bench.baseline is None or not bench.baseline.exists():
        return None
    data = json.loads(bench.baseline.read_text())
    if "history" in data:  # trajectory file: latest scale-matched entry
        matched = [e for e in data["history"] if e.get("quick") == quick]
        return matched[-1]["scenarios"] if matched else None
    if data.get("config", {}).get("quick") != quick:
        return None
    return data.get("scenarios")


def check_regressions(
    bench: Benchmark, report: Dict, baseline: Optional[Dict],
    quick: bool = False,
) -> List[str]:
    """Speedup ratios that fell below baseline / tolerance.

    ``baseline`` must be captured *before* the bench ran (a run without
    ``--out`` appends itself to the trajectory file — reading the file
    afterwards would compare the run against itself).
    """
    if baseline is None:
        print(f"  {bench.name}: no scale-matched checked-in baseline; "
              "regression check skipped")
        return []
    cap = QUICK_RATIO_CHECK_CAP if quick else RATIO_CHECK_CAP
    measured = _scenario_ratios(report.get("scenarios", {}))
    expected = _scenario_ratios(baseline)
    problems = []
    for name in sorted(set(measured) & set(expected)):
        floor = min(expected[name], cap) / REGRESSION_TOLERANCE
        status = "ok" if measured[name] >= floor else "REGRESSED"
        print(f"  {bench.name}/{name}: speedup {measured[name]:.2f}x "
              f"(baseline {expected[name]:.2f}x, floor {floor:.2f}x) "
              f"{status}")
        if measured[name] < floor:
            problems.append(
                f"{bench.name}/{name}: {measured[name]:.2f}x < "
                f"{floor:.2f}x (baseline {expected[name]:.2f}x capped at "
                f"{cap} / {REGRESSION_TOLERANCE})"
            )
    return problems


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument(
        "names", nargs="*", metavar="name",
        help="benchmarks to run; 'all' runs everything, default runs the "
             "JSON harnesses (core-throughput + profile-backends)",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small sizes / assertions-only for CI smoke")
    parser.add_argument("--check", action="store_true",
                        help="compare speedup ratios against the checked-in "
                             f"baselines (fail on >{REGRESSION_TOLERANCE}x "
                             "regression)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="best-of-N timing for the JSON harnesses")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory for result JSONs (default: repo "
                             "root for full runs; quick runs write only "
                             "here)")
    parser.add_argument("--list", action="store_true",
                        help="list registered benchmarks and exit")
    args = parser.parse_args(argv)

    if args.list:
        width = max(len(n) for n in SUITE)
        for name in available_benchmarks():
            bench = SUITE[name]
            kind = "json" if "json" in bench.tags else "pytest"
            print(f"{name:<{width}}  [{kind}]  {bench.description}")
        return 0

    if not args.names:
        names = [n for n in available_benchmarks() if "json" in SUITE[n].tags]
    elif args.names == ["all"]:
        names = available_benchmarks()
    else:
        # accept snake_case spellings of the dashed registry names
        names = [
            n if n in SUITE else n.replace("_", "-") for n in args.names
        ]
        unknown = [n for n in names if n not in SUITE]
        if unknown:
            print(f"unknown benchmark(s) {unknown}; try --list",
                  file=sys.stderr)
            return 2

    problems: List[str] = []
    for name in names:
        bench = SUITE[name]
        print(f"=== {name} ===")
        # snapshot the baseline BEFORE the run: a run without --out
        # appends itself to the trajectory file it is checked against
        baseline = (_baseline_scenarios(bench, args.quick)
                    if args.check else None)
        report = bench.runner(args.quick, args.repeats, args.out)
        if args.check and report is not None:
            problems.extend(
                check_regressions(bench, report, baseline, args.quick)
            )

    if problems:
        print("\nperformance regressions detected:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
