#!/usr/bin/env python3
"""The registered benchmark suite: every benchmark behind one front door.

The repo grew 17 ad-hoc ``bench_*.py`` entry points — 15 pytest-benchmark
figure/engineering suites plus the standalone profile-backend harness.
This module consolidates them behind a single registry so one command
runs any of them, quick or full, and the JSON-producing harnesses feed a
*perf trajectory* that is tracked PR-over-PR:

* ``python benchmarks/suite.py --list`` — what exists;
* ``python benchmarks/suite.py core-throughput --quick`` — one bench
  (also reachable as ``repro bench core-throughput --quick``);
* ``python benchmarks/suite.py all`` — everything, pytest suites
  included;
* ``python benchmarks/suite.py --check`` — run the JSON harnesses and
  fail when any scenario's speedup ratio regresses more than
  ``REGRESSION_TOLERANCE`` against the scale-matched baseline checked
  into the repo (machine-independent: ratios, not wall-clock, are
  compared).

``core-throughput`` is the headline harness of the integer-timebase fast
path: it schedules the 10k-job maintenance trace with the exact
reference engines and with the incremental integer sweep
(:mod:`repro.core.timebase`), asserts the schedules are *identical*, and
appends an entry to ``BENCH_core_throughput.json`` — the acceptance gate
is >= 5x end-to-end LSRC speedup over the tree-backend number recorded
in ``BENCH_profile_backends.json``.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import subprocess
import sys
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Optional

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(BENCH_DIR))

#: A scenario "regresses" when its measured speedup ratio falls below
#: baseline / tolerance (1.5x headroom absorbs machine noise).
REGRESSION_TOLERANCE = 1.5

#: Baseline ratios are clamped to this before the floor is computed: the
#: gate's job is catching a fast path that *lost its advantage* (ratio
#: collapsing toward 1x), and very large ratios (50-150x) wobble with
#: hardware constants and sub-10ms denominators — min(baseline, cap) /
#: tolerance keeps the check meaningful without being flaky.  Quick runs
#: are constant-dominated (sub-10ms int-path timings), so their cap is
#: lower still: the floor degrades to "the fast path is still clearly
#: faster", which is the only claim a quick run can support.
RATIO_CHECK_CAP = 10.0
QUICK_RATIO_CHECK_CAP = 4.0

CORE_THROUGHPUT_JSON = REPO_ROOT / "BENCH_core_throughput.json"
PROFILE_BACKENDS_JSON = REPO_ROOT / "BENCH_profile_backends.json"
REPLAY_THROUGHPUT_JSON = REPO_ROOT / "BENCH_replay_throughput.json"

#: Bounded-memory gates of the replay harness: the 1M-job run may not
#: exceed these multiples/offsets of the 100k-job run's peaks (the
#: trace prefixes agree, so a truly bounded engine stays flat).
MEMORY_SEGMENT_FACTOR = 4
MEMORY_QUEUE_FACTOR = 10
MEMORY_SLACK = 256
MEMORY_RSS_LIMIT_MB = 100

#: The PR-4 serial replay wall-clock baseline the tentpole gate compares
#: against: ``jobs_per_sec_100k`` of ``replay_1m_easy`` in the full
#: (non-quick) PR-4 entry of ``BENCH_replay_throughput.json`` — the
#: ListProfile + per-job-heap + generic-policy engine on
#: ``synth:steady:100k``, measured on the perf-tracking machine.
PR4_SERIAL_JOBS_PER_SEC_100K = 32_112

#: The tentpole acceptance gate: ArrayProfile + calendar queue + fused
#: decision passes must replay ``synth:steady:100k`` serially at >= this
#: multiple of :data:`PR4_SERIAL_JOBS_PER_SEC_100K`.
REPLAY_SPEEDUP_GATE = 2.5

#: Escape hatch for the serial-throughput gate (debugging on heavily
#: loaded machines only) — the gate itself is an interleaved in-run
#: ratio, so it is machine-independent and normally enforced everywhere.
SKIP_WALLCLOCK_GATE_ENV = "REPRO_BENCH_SKIP_WALLCLOCK_GATE"

#: The PR-5 serial replay wall-clock baseline for the batched-engine
#: gate: ``jobs_per_sec`` of ``serial_throughput_100k`` in the full
#: PR-5 entry of ``BENCH_replay_throughput.json`` — the scalar fused
#: ArrayProfile + calendar-queue pipeline on the perf-tracking machine.
PR5_SERIAL_JOBS_PER_SEC_100K = 83_254

#: The PR-6 two-arm gate for hosts with >= 2 cores: the batched/epoch
#: engine must either beat the verbatim PR-5 serial pipeline by this
#: in-run multiple, or clear :data:`BATCH_ABS_JOBS_PER_SEC` absolute.
BATCH_SPEEDUP_GATE = 2.5
BATCH_ABS_JOBS_PER_SEC = 250_000

#: Default no-regression floor: byte-identical epoch sharding serializes
#: on the frontier-checkpoint chain, so commodity 1-2 core hosts (CI
#: runners, this dev box) cannot physically reach the two-arm targets —
#: there the honest gate is "batched never loses to scalar", enforced
#: as this interleaved in-run ratio.  The full two-arm targets are
#: *measured and recorded* on every host and *enforced* where
#: :data:`ENFORCE_EPOCH_GATE_ENV` says the hardware was calibrated for
#: them (the perf-tracking box).
BATCH_FLOOR_RATIO = 0.97

#: Second arm of the floor mode, same dual-noise-mode logic as the
#: PR-5 gate: transient host pressure can dent one interleaved leg
#: more than the other, so an absolute wall-clock arm (fraction of the
#: checked-in PR-5 number, machine-calibrated like its cousin) backs
#: the ratio arm up — both must fail for the gate to fail.
BATCH_FLOOR_ABS_FRACTION = 0.9

#: Opt-in switch that promotes the batched/epoch gate from the
#: no-regression floor to full two-arm enforcement
#: (:data:`BATCH_SPEEDUP_GATE`× in-run or
#: :data:`BATCH_ABS_JOBS_PER_SEC` absolute).
ENFORCE_EPOCH_GATE_ENV = "REPRO_BENCH_ENFORCE_EPOCH_GATE"

#: Epoch workers the gate's parallel leg uses (capped so the leg
#: measures scaling, not scheduler thrash on huge hosts).
EPOCH_GATE_WORKERS = 4

#: Profile backend the 1M bounded-memory replay legs run on (the CI
#: bench-smoke matrix sweeps it; the gate scenario always measures the
#: array kernel against the PR-4 configuration regardless).
REPLAY_BACKEND_ENV = "REPRO_REPLAY_BACKEND"


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark.

    ``runner(quick, repeats, out_dir)`` returns a JSON-safe report (or
    ``None`` for pass/fail-only suites).  ``baseline`` names the
    checked-in JSON whose scale-matched entry ``--check`` compares
    speedup ratios against.
    """

    name: str
    description: str
    runner: Callable[[bool, int, Optional[pathlib.Path]], Optional[Dict]]
    baseline: Optional[pathlib.Path] = None
    tags: tuple = field(default_factory=tuple)


SUITE: Dict[str, Benchmark] = {}


def register_bench(bench: Benchmark) -> Benchmark:
    SUITE[bench.name] = bench
    return bench


def available_benchmarks() -> List[str]:
    return sorted(SUITE)


# ---------------------------------------------------------------------------
# core-throughput harness (the integer-timebase headline numbers)
# ---------------------------------------------------------------------------

def _best_of(repeats: int, fn):
    """(best seconds, last result) over ``repeats`` timed calls."""
    best = None
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _speedup_scenario(label, exact_fn, fast_fn, repeats, extra=None):
    """Time exact vs fast engines and *assert identical schedules*."""
    exact_s, exact_schedule = _best_of(repeats, exact_fn)
    fast_s, fast_schedule = _best_of(repeats, fast_fn)
    identical = exact_schedule.starts == fast_schedule.starts
    assert identical, (
        f"{label}: integer-timebase schedule diverged from the exact path "
        "— differential guarantee violated"
    )
    scenario = {
        "exact_s": round(exact_s, 4),
        "int_s": round(fast_s, 4),
        "speedup": round(exact_s / fast_s, 2) if fast_s > 0 else float("inf"),
        "identical_schedules": True,
    }
    if extra:
        scenario.update(extra)
    return scenario


def bench_core_throughput(
    quick: bool, repeats: int, out_dir: Optional[pathlib.Path]
) -> Dict:
    """Exact engines vs the incremental integer sweep, end to end."""
    from bench_profile_backends import make_trace

    from repro.algorithms import ConservativeBackfillScheduler, ListScheduler

    n_jobs = 800 if quick else 10_000
    n_res = 80 if quick else 1_000
    m, seed = 256, 7
    print(f"building trace: {n_jobs} jobs, {n_res} reservations, m={m}")
    instance = make_trace(n_jobs, n_res, m, seed)

    scenarios: Dict[str, Dict] = {}

    print("scenario 1/3: LSRC, exact tree-backend sweep vs integer sweep ...")
    scenarios["lsrc_scheduling"] = _speedup_scenario(
        "lsrc_scheduling",
        lambda: ListScheduler(
            profile_backend="tree", timebase="exact"
        ).schedule(instance),
        lambda: ListScheduler(timebase="auto").schedule(instance),
        repeats,
    )
    # The acceptance gate: the int path vs the *checked-in* tree-backend
    # scheduling number of BENCH_profile_backends.json (same trace).
    baseline_tree = _profile_backends_tree_baseline(quick)
    if baseline_tree is not None:
        scenarios["lsrc_scheduling"]["baseline_tree_s"] = baseline_tree
        scenarios["lsrc_scheduling"]["speedup_vs_baseline_tree"] = round(
            baseline_tree / scenarios["lsrc_scheduling"]["int_s"], 2
        )

    print("scenario 2/3: conservative backfilling, exact tree vs integer ...")
    scenarios["backfill_cons"] = _speedup_scenario(
        "backfill_cons",
        lambda: ConservativeBackfillScheduler(
            profile_backend="tree", timebase="exact"
        ).schedule(instance),
        lambda: ConservativeBackfillScheduler(timebase="auto").schedule(
            instance
        ),
        repeats,
    )

    # Fraction-timed twin of the trace: this is where the timebase earns
    # its name — the exact path pays a gcd per arithmetic op, the fast
    # path normalises once (scale lcm(3)=3) and runs on machine ints.
    frac_jobs = 200 if quick else 2_000
    frac_res = 30 if quick else 200
    print(f"scenario 3/3: Fraction-timed trace ({frac_jobs} jobs), "
          "exact vs integer ...")
    frac_instance = make_trace(frac_jobs, frac_res, m, seed).scaled(
        Fraction(1, 3)
    )
    scenarios["lsrc_fraction_times"] = _speedup_scenario(
        "lsrc_fraction_times",
        lambda: ListScheduler(
            profile_backend="tree", timebase="exact"
        ).schedule(frac_instance),
        lambda: ListScheduler(timebase="auto").schedule(frac_instance),
        repeats,
        extra={"time_scale_lcm": 3},
    )

    for name, scenario in scenarios.items():
        line = (f"  {name}: exact {scenario['exact_s']:.3f}s  "
                f"int {scenario['int_s']:.3f}s  "
                f"speedup {scenario['speedup']:.1f}x (schedules identical)")
        if "speedup_vs_baseline_tree" in scenario:
            line += (f"  [{scenario['speedup_vs_baseline_tree']:.1f}x vs "
                     "checked-in tree baseline]")
        print(line)

    entry = {
        "quick": quick,
        "config": {
            "jobs": n_jobs,
            "reservations": n_res,
            "fraction_jobs": frac_jobs,
            "machines": m,
            "seed": seed,
            "repeats": repeats,
        },
        "scenarios": scenarios,
    }
    _append_history(entry, out_dir)

    gate = scenarios["lsrc_scheduling"].get("speedup_vs_baseline_tree")
    if not quick and gate is not None and gate < 5:
        print(
            f"WARNING: LSRC int-path speedup {gate}x is below the 5x "
            "acceptance target vs BENCH_profile_backends.json",
            file=sys.stderr,
        )
        raise SystemExit(1)
    return entry


def _rss_mb() -> int:
    """Peak resident set size of this process in MB (high-water mark)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes there, KB on Linux
        peak //= 1024
    return peak // 1024


def _pr4_synth_steady_jobs(n: int, m: int, seed: int):
    """PR-4's ``synth_swf_jobs("steady", ...)``, verbatim.

    The tentpole gate's baseline leg must pay PR-4's *pipeline* cost —
    this PR replaced the ``randint`` draw path and the validating Job
    constructor with bit-identical-but-faster equivalents, so measuring
    the baseline through today's generator would flatter it.  This is
    the steady-profile branch of the PR-4 generator exactly as shipped
    (same rng stream, same Job values, original per-job cost).
    """
    import random as _random

    from repro.core.job import Job

    rng = _random.Random(f"synth-swf:steady:{m}:{seed}")
    width_exp_max = max(1, m.bit_length() - 3)
    load_pct = 70
    t = 0
    for i in range(1, n + 1):
        q = 2 ** rng.randint(0, width_exp_max)
        p = rng.randint(60, 3600)
        area = p * q
        mean_gap = (area * 100) // (load_pct * m)
        t += rng.randint(0, max(2, 2 * mean_gap))
        yield Job(id=i, p=p, q=q, release=t)


def _run_serial_gate(
    repeats: int, small_n: int, m: int, seed: int,
    profile: str, scenarios: Dict,
) -> None:
    """The tentpole serial-throughput gate (see bench_replay_throughput);
    the scale is identical in quick and full runs, so both enforce it.

    Two arms, either clearing :data:`REPLAY_SPEEDUP_GATE` passes — both
    measure "x times the PR-4 serial baseline" under a different noise
    assumption, and the host exhibits both noise modes:

    * the interleaved in-run ratio vs the verbatim PR-4 pipeline —
      robust when the machine is uniformly slow (both legs degrade);
    * absolute jobs/sec vs the checked-in PR-4 wall-clock number —
      robust when transient host pressure hits the (memory-bound) fast
      leg harder than the (interpreter-bound) baseline leg; this arm is
      machine-calibrated, hence the skip env for foreign hardware.
    """
    from repro.simulation import ReplayEngine
    from repro.workloads.swf import synth_swf_jobs

    gate_repeats = max(repeats, 6)
    new_s = pr4_s = math.inf
    new_result = pr4_result = None
    for _ in range(gate_repeats):
        t0 = time.perf_counter()
        new_result = ReplayEngine(m, policy="easy").run(
            synth_swf_jobs(profile, small_n, m=m, seed=seed)
        )
        new_s = min(new_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        pr4_result = ReplayEngine(
            m, policy="easy", profile_backend="list",
            completion_queue="heap", fused_policies=False,
        ).run(_pr4_synth_steady_jobs(small_n, m, seed))
        pr4_s = min(pr4_s, time.perf_counter() - t0)
    assert new_result.totals["makespan"] == pr4_result.totals["makespan"], (
        "fused array engine and PR-4 pipeline disagree on the schedule "
        "— differential guarantee violated"
    )
    new_jps = small_n / new_s
    pr4_jps = small_n / pr4_s
    ratio = new_jps / pr4_jps
    vs_checked_in = new_jps / PR4_SERIAL_JOBS_PER_SEC_100K
    wallclock_gate = os.environ.get(SKIP_WALLCLOCK_GATE_ENV) is None
    scenarios["serial_throughput_100k"] = {
        "jobs": small_n,
        "jobs_per_sec": round(new_jps),
        "pr4_pipeline_jobs_per_sec": round(pr4_jps),
        "pr4_checked_in_jobs_per_sec": PR4_SERIAL_JOBS_PER_SEC_100K,
        "speedup": round(ratio, 2),
        "speedup_vs_checked_in": round(vs_checked_in, 2),
        "gate": REPLAY_SPEEDUP_GATE,
        "gate_applied": wallclock_gate,
        "identical_schedules": True,
    }
    print(
        f"  new engine {new_jps:,.0f} jobs/s vs PR-4 pipeline "
        f"{pr4_jps:,.0f} jobs/s — {ratio:.2f}x in-run, "
        f"{vs_checked_in:.2f}x the checked-in PR-4 number "
        f"(gate {REPLAY_SPEEDUP_GATE}x, either arm"
        + ("" if wallclock_gate else "; gate SKIPPED by env") + ")"
    )
    if wallclock_gate and max(ratio, vs_checked_in) < REPLAY_SPEEDUP_GATE:
        print(
            f"FAIL: serial replay is {ratio:.2f}x the in-run PR-4 "
            f"pipeline and {vs_checked_in:.2f}x the checked-in PR-4 "
            f"baseline — neither arm reaches {REPLAY_SPEEDUP_GATE}x; "
            f"set {SKIP_WALLCLOCK_GATE_ENV}=1 only on machines slower "
            "than the perf-tracking box",
            file=sys.stderr,
        )
        raise SystemExit(1)


def _run_batched_gate(
    repeats: int, small_n: int, m: int, seed: int,
    profile: str, scenarios: Dict,
) -> None:
    """The PR-6 batched/epoch gate (see bench_replay_throughput).

    Interleaves the batched columnar engine against the **verbatim PR-5
    serial pipeline** — the same engine with ``batch=False`` and nothing
    else changed — best-of-N, full pipeline (generation included).  On
    hosts with >= 2 cores an epoch-sharded leg
    (:func:`repro.simulation.replay.replay_epochs`,
    ``min(EPOCH_GATE_WORKERS, cores)`` process workers) is measured and
    recorded alongside.

    Enforcement depends on the host (``gate_mode`` in the scenario):

    * ``two-arm`` (:data:`ENFORCE_EPOCH_GATE_ENV` set — the calibrated
      perf-tracking box): in-run ratio >= :data:`BATCH_SPEEDUP_GATE` or
      best absolute jobs/s >= :data:`BATCH_ABS_JOBS_PER_SEC`.
    * ``floor`` (default): the in-run ratio must stay above
      :data:`BATCH_FLOOR_RATIO`, backed by an absolute arm at
      :data:`BATCH_FLOOR_ABS_FRACTION` of the checked-in PR-5 number —
      commodity hosts cannot reach the two-arm targets because
      byte-identical epoch sharding serializes on the
      frontier-checkpoint chain, so the honest universal gate is
      "batched never loses to scalar".
    * ``identity-only`` (numpy unavailable/disabled): the batched leg
      *is* the scalar fallback, so the ratio measures noise; only the
      identity assertions apply.

    Every mode asserts batched == scalar == epoch-sharded schedules.
    """
    from repro.core.profiles import numpy_module
    from repro.simulation import ReplayEngine
    from repro.simulation.replay import replay_epochs
    from repro.workloads.swf import synth_swf_jobs

    gate_repeats = max(repeats, 6)
    batched_s = pr5_s = math.inf
    batched_result = pr5_result = None
    for _ in range(gate_repeats):
        t0 = time.perf_counter()
        batched_result = ReplayEngine(m, policy="easy", batch=True).run(
            synth_swf_jobs(profile, small_n, m=m, seed=seed)
        )
        batched_s = min(batched_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        pr5_result = ReplayEngine(m, policy="easy", batch=False).run(
            synth_swf_jobs(profile, small_n, m=m, seed=seed)
        )
        pr5_s = min(pr5_s, time.perf_counter() - t0)
    assert (
        batched_result.totals["makespan"] == pr5_result.totals["makespan"]
        and batched_result.totals["mean_wait"]
        == pr5_result.totals["mean_wait"]
    ), (
        "batched engine and PR-5 scalar pipeline disagree on the "
        "schedule — differential guarantee violated"
    )
    batched_jps = small_n / batched_s
    pr5_jps = small_n / pr5_s
    ratio = batched_jps / pr5_jps

    cores = os.cpu_count() or 1
    epoch_workers = min(EPOCH_GATE_WORKERS, cores)
    epoch_jps = None
    if cores >= 2:
        source = f"synth:{profile}:{small_n}"
        epoch_s = math.inf
        for _ in range(max(2, repeats)):
            t0 = time.perf_counter()
            epoch_result = replay_epochs(
                source, policy="easy", epochs=epoch_workers, m=m,
                seed=seed, use_processes=True,
            )
            epoch_s = min(epoch_s, time.perf_counter() - t0)
        assert (
            epoch_result.totals["makespan"]
            == pr5_result.totals["makespan"]
        ), "epoch-sharded replay diverged from serial"
        epoch_jps = small_n / epoch_s

    best_jps = max(batched_jps, epoch_jps or 0)
    wallclock_gate = os.environ.get(SKIP_WALLCLOCK_GATE_ENV) is None
    if numpy_module() is None:
        gate_mode = "identity-only"
    elif os.environ.get(ENFORCE_EPOCH_GATE_ENV):
        gate_mode = "two-arm"
    else:
        gate_mode = "floor"
    scenarios["batched_throughput_100k"] = {
        "jobs": small_n,
        "jobs_per_sec": round(batched_jps),
        "pr5_pipeline_jobs_per_sec": round(pr5_jps),
        "pr5_checked_in_jobs_per_sec": PR5_SERIAL_JOBS_PER_SEC_100K,
        "epoch_jobs_per_sec": round(epoch_jps) if epoch_jps else None,
        "epoch_workers": epoch_workers if cores >= 2 else 0,
        "cores": cores,
        "speedup": round(ratio, 2),
        "vs_pr5_checked_in": round(
            batched_jps / PR5_SERIAL_JOBS_PER_SEC_100K, 2
        ),
        "gate": BATCH_SPEEDUP_GATE,
        "gate_abs_jobs_per_sec": BATCH_ABS_JOBS_PER_SEC,
        "gate_mode": gate_mode,
        "gate_floor": BATCH_FLOOR_RATIO,
        "gate_applied": wallclock_gate and gate_mode != "identity-only",
        "identical_schedules": True,
    }
    epoch_note = (
        f", epoch x{epoch_workers} {epoch_jps:,.0f} jobs/s"
        if epoch_jps else " (single core: epoch leg skipped)"
    )
    print(
        f"  batched {batched_jps:,.0f} jobs/s vs PR-5 pipeline "
        f"{pr5_jps:,.0f} jobs/s — {ratio:.2f}x in-run{epoch_note} "
        f"[gate mode: {gate_mode}"
        + ("" if wallclock_gate else "; gate SKIPPED by env") + "]"
    )
    if not wallclock_gate or gate_mode == "identity-only":
        return
    if gate_mode == "two-arm":
        if ratio < BATCH_SPEEDUP_GATE and best_jps < BATCH_ABS_JOBS_PER_SEC:
            print(
                f"FAIL: batched/epoch replay is {ratio:.2f}x the in-run "
                f"PR-5 pipeline and {best_jps:,.0f} jobs/s absolute — "
                f"neither arm reaches {BATCH_SPEEDUP_GATE}x / "
                f"{BATCH_ABS_JOBS_PER_SEC:,} jobs/s; unset "
                f"{ENFORCE_EPOCH_GATE_ENV} on machines other than the "
                "perf-tracking box",
                file=sys.stderr,
            )
            raise SystemExit(1)
    else:
        abs_floor = BATCH_FLOOR_ABS_FRACTION * PR5_SERIAL_JOBS_PER_SEC_100K
        if ratio < BATCH_FLOOR_RATIO and batched_jps < abs_floor:
            print(
                f"FAIL: batched replay is {ratio:.2f}x the in-run PR-5 "
                f"scalar pipeline and {batched_jps:,.0f} jobs/s absolute "
                f"— below both the {BATCH_FLOOR_RATIO}x no-regression "
                f"floor and {abs_floor:,.0f} jobs/s "
                f"({BATCH_FLOOR_ABS_FRACTION}x the checked-in PR-5 "
                "number); set "
                f"{SKIP_WALLCLOCK_GATE_ENV}=1 only on machines slower "
                "than the perf-tracking box",
                file=sys.stderr,
            )
            raise SystemExit(1)


def _run_journal_overhead(
    repeats: int, small_n: int, m: int, seed: int,
    profile: str, scenarios: Dict,
) -> None:
    """Measure the durable journal's cost (record-only, never a gate).

    Interleaves the journal-free replay against the journaled one on the
    same trace, best-of-N, and records the overhead percentage in the
    trajectory — durability costs what it costs, and the number should
    be visible, not gated.  What *is* asserted here is the contract that
    makes the journal safe to ship: journaled and plain runs emit
    identical window rows and identical deterministic totals (the
    journal wraps the engine, it never reaches into it), so with no
    ``--journal`` flag the overhead is exactly zero.
    """
    import shutil
    import tempfile

    from repro.durability import replay_journaled
    from repro.simulation import replay
    from repro.workloads.swf import synth_swf_jobs

    source = f"synth:{profile}:{small_n}"
    interval = max(small_n // 10, 1)
    best_plain = best_journaled = None
    plain = journaled = None
    for _ in range(max(repeats, 3)):
        t0 = time.perf_counter()
        plain = replay(
            synth_swf_jobs(profile, small_n, m=m, seed=seed), m,
            policy="easy",
        )
        best_plain = (time.perf_counter() - t0 if best_plain is None
                      else min(best_plain, time.perf_counter() - t0))
        tmp = tempfile.mkdtemp(prefix="bench-journal-")
        try:
            t0 = time.perf_counter()
            journaled = replay_journaled(
                source, os.path.join(tmp, "journal"), policy="easy",
                m=m, seed=seed, snapshot_interval=interval,
            )
            elapsed = time.perf_counter() - t0
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        best_journaled = (elapsed if best_journaled is None
                          else min(best_journaled, elapsed))
    assert plain is not None and journaled is not None
    volatile = {"elapsed_seconds"}
    assert journaled.windows == plain.windows, (
        "journaled replay's window rows diverged from the plain engine"
    )
    assert (
        {k: v for k, v in journaled.totals.items() if k not in volatile}
        == {k: v for k, v in plain.totals.items() if k not in volatile}
    ), "journaled replay's totals diverged from the plain engine"
    overhead_pct = round((best_journaled / best_plain - 1.0) * 100, 1)
    scenarios[f"journal_overhead_{small_n // 1000}k"] = {
        "jobs": small_n,
        "snapshot_interval": interval,
        "jobs_per_sec_plain": round(small_n / best_plain),
        "jobs_per_sec_journaled": round(small_n / best_journaled),
        "overhead_pct": overhead_pct,
        "identical_rows": True,
        "gated": False,
    }
    print(
        f"  journal overhead: {overhead_pct:+.1f}% "
        f"({round(small_n / best_journaled):,} jobs/s journaled vs "
        f"{round(small_n / best_plain):,} plain; record-only)"
    )


def _run_uncertainty_overhead(
    repeats: int, small_n: int, m: int, seed: int,
    profile: str, scenarios: Dict,
) -> None:
    """Exact-model overhead gate + stochastic throughput (record-only).

    The exact uncertainty model is the degenerate certain world, so the
    engine normalizes it away up front — a replay under ``exact`` must
    emit rows byte-identical to a run with no model at all, and must
    cost nothing.  Both halves of that contract are held here: the
    identity is asserted outright, and the interleaved best-of-N
    plain/exact wall-clock ratio lands in the trajectory as the
    scenario's ``speedup`` so :func:`check_regressions` applies the
    standard no-regression floor to it (baseline ~1.0x).  A lognormal
    leg with the default 2% failure rate runs once alongside to keep
    the stochastic path's throughput visible night over night; the
    randomness costs what it costs, so that number is never gated.
    """
    from repro.simulation import replay
    from repro.workloads.swf import synth_swf_jobs

    def jobs():
        return synth_swf_jobs(profile, small_n, m=m, seed=seed)

    best_plain = best_exact = None
    plain = exact = None
    for _ in range(max(repeats, 3)):
        t0 = time.perf_counter()
        plain = replay(jobs(), m, policy="easy")
        elapsed = time.perf_counter() - t0
        best_plain = (elapsed if best_plain is None
                      else min(best_plain, elapsed))
        t0 = time.perf_counter()
        exact = replay(jobs(), m, policy="easy", uncertainty="exact")
        elapsed = time.perf_counter() - t0
        best_exact = (elapsed if best_exact is None
                      else min(best_exact, elapsed))
    assert plain is not None and exact is not None
    volatile = {"elapsed_seconds"}
    assert exact.windows == plain.windows, (
        "exact-model replay's window rows diverged from the plain engine"
    )
    assert (
        {k: v for k, v in exact.totals.items() if k not in volatile}
        == {k: v for k, v in plain.totals.items() if k not in volatile}
    ), "exact-model replay's totals diverged from the plain engine"
    t0 = time.perf_counter()
    stochastic = replay(
        jobs(), m, policy="easy",
        uncertainty=f"lognormal:sigma=0.5:seed={seed}",
    )
    stochastic_s = time.perf_counter() - t0
    assert stochastic.totals["requeues"] > 0, (
        "stochastic leg never exercised the failure/requeue path"
    )
    assert "p_slowdown_le" in stochastic.totals, (
        "stochastic leg is missing the distributional-guarantee metrics"
    )
    ratio = round(best_plain / best_exact, 3)
    scenarios[f"uncertainty_overhead_{small_n // 1000}k"] = {
        "jobs": small_n,
        "jobs_per_sec_plain": round(small_n / best_plain),
        "jobs_per_sec_exact": round(small_n / best_exact),
        "jobs_per_sec_lognormal": round(small_n / stochastic_s),
        "lognormal_requeues": stochastic.totals["requeues"],
        "lognormal_kills": stochastic.totals["kills"],
        "speedup": ratio,
        "identical_rows": True,
        "gated": True,
    }
    print(
        f"  uncertainty overhead: exact at {ratio:.2f}x plain "
        f"({round(small_n / best_exact):,} jobs/s; identical rows), "
        f"lognormal at {round(small_n / stochastic_s):,} jobs/s "
        f"({stochastic.totals['requeues']} requeues, record-only)"
    )


def bench_replay_throughput(
    quick: bool, repeats: int, out_dir: Optional[pathlib.Path]
) -> Dict:
    """Million-job streaming replay: throughput, identity and memory gates.

    Scenario families, all on the deterministic ``steady`` synthetic
    trace (whose 100k-job trace is an exact prefix of the 1M-job trace,
    so cross-scale comparisons are apples to apples):

    * ``serial_throughput_100k`` — **the PR-5 tentpole gate**: serial
      replay of ``synth:steady:100k`` on the ArrayProfile +
      calendar-queue + fused engine vs the faithful PR-4 pipeline
      (ListProfile + per-job heap + generic policy passes fed by PR-4's
      verbatim generator), interleaved best-of-N so the ratio is
      machine-independent.  Fails below :data:`REPLAY_SPEEDUP_GATE`×;
      the checked-in PR-4 wall-clock number
      (:data:`PR4_SERIAL_JOBS_PER_SEC_100K`) is recorded alongside for
      the trajectory.
    * ``batched_throughput_100k`` — **the PR-6 gate**: the batched
      columnar engine interleaved against the verbatim PR-5 scalar
      pipeline, plus an epoch-sharded process leg on multi-core hosts;
      two-arm (:data:`BATCH_SPEEDUP_GATE`× in-run or
      :data:`BATCH_ABS_JOBS_PER_SEC` absolute) where
      :data:`ENFORCE_EPOCH_GATE_ENV` says the host is calibrated for
      it, the :data:`BATCH_FLOOR_RATIO` no-regression floor elsewhere
      (see :func:`_run_batched_gate`).
    * ``replay_1m_<policy>`` — replay 100k then 1M jobs and **assert**
      the peak profile segments, peak queue length and RSS high-water
      stay flat across the 10x scale jump (the bounded-memory gate);
      backend selectable via :data:`REPLAY_BACKEND_ENV` for the CI
      matrix.
    * ``journal_overhead_100k`` — record-only: the durable journal's
      cost vs the journal-free engine on the same trace, plus the
      assertion that both emit identical rows (see
      :func:`_run_journal_overhead`); never gated.
    * ``uncertainty_overhead_100k`` — the exact uncertainty model must
      be free: identical rows to the plain engine asserted outright,
      and the plain/exact wall-clock ratio gated through the standard
      no-regression floor; the stochastic lognormal leg's throughput
      rides along record-only (see :func:`_run_uncertainty_overhead`).
    * ``ingest_100k_gz`` — parse-only pass of a gzipped 100k-job SWF
      file through the chunked streaming reader.
    * ``identity_100k`` — the byte-identity matrix: for every built-in
      policy, ``OnlineSimulation`` is the reference and the streamed
      replay must reproduce its start times and int-exact metrics on
      every profile backend × plain/gzip ingestion; additionally the
      multi-policy sharded runner's merged rows must equal the serial
      runner's byte for byte, and the batch/epoch matrix (scalar,
      batched, epoch-sharded K∈{2,3,7} in-process + K=3 across real
      processes, per policy — 24 configs full, 6 quick) must agree on
      totals, window rows and every start time.  Quick runs shrink the matrix to one
      policy × (array, list) × gzip.  The conservative policy's
      in-memory reference is super-quadratic in trace length, so its
      ``OnlineSimulation`` leg runs on a 2k prefix and its full-length
      runs are checked for mutual identity across configs instead (see
      the inline note).

    The 1M-job legs run once regardless of ``--repeats``; the gate
    scenario is best-of-``max(repeats, 6)`` interleaved pairs (wall-clock
    gates deserve a noise floor).  Results append to
    ``BENCH_replay_throughput.json``.
    """
    import gzip
    import tempfile

    from repro.core.metrics import summarize
    from repro.simulation import (
        OnlineSimulation,
        ReplayEngine,
        replay,
        replay_policies,
        replay_swf,
    )
    from repro.workloads.swf import (
        iter_swf,
        read_swf,
        save_swf_trace,
        synth_swf_jobs,
    )

    m, seed, profile = 256, 0, "steady"
    small_n, big_n = 100_000, 1_000_000
    policies = ("easy",) if quick else ("easy", "greedy")
    backend = os.environ.get(REPLAY_BACKEND_ENV, "auto")
    # A non-auto backend override is the CI matrix pinning the 1M
    # bounded-memory legs to one backend; the gate, ingestion and
    # identity scenarios are backend-independent and would only repeat
    # the auto leg's work, so they run on the auto leg alone.
    full_harness = backend == "auto"
    scenarios: Dict[str, Dict] = {}

    # -- the tentpole gate: serial 100k throughput, new engine vs PR-4 --
    # Both legs replay the *same* job stream end to end (generation
    # included, exactly as PR-4 measured): the new leg is the shipped
    # pipeline, the baseline leg is the PR-4 pipeline — ListProfile +
    # per-job heap + generic policy passes fed by PR-4's verbatim
    # generator.  The legs are interleaved best-of-N so host-level
    # throttling (which moves both clocks together) hits both equally,
    # making the gate ratio machine-independent.
    if not full_harness:
        print(f"backend={backend} leg: bounded-memory scenarios only "
              "(gate/ingest/identity run on the auto leg)")
    if full_harness:
        print(f"serial replay gate: synth:{profile}:{small_n} on m={m} ...")
        _run_serial_gate(repeats, small_n, m, seed, profile, scenarios)
        print(f"batched/epoch gate: synth:{profile}:{small_n} on m={m} ...")
        _run_batched_gate(repeats, small_n, m, seed, profile, scenarios)
        print(f"journal overhead: synth:{profile}:{small_n} on m={m} ...")
        _run_journal_overhead(repeats, small_n, m, seed, profile, scenarios)
        print(f"uncertainty overhead: synth:{profile}:{small_n} on m={m} ...")
        _run_uncertainty_overhead(repeats, small_n, m, seed, profile, scenarios)

    # -- bounded-memory legs at 1M jobs ---------------------------------
    for policy in policies:
        print(f"replay {small_n} then {big_n} jobs ({profile}, {policy}, "
              f"backend={backend}) ...")
        small = replay(
            synth_swf_jobs(profile, small_n, m=m, seed=seed), m,
            policy=policy, profile_backend=backend,
        )
        rss_small = _rss_mb()
        big = replay(
            synth_swf_jobs(profile, big_n, m=m, seed=seed), m,
            policy=policy, profile_backend=backend,
        )
        rss_big = _rss_mb()
        st, bt = small.totals, big.totals
        seg_limit = (
            MEMORY_SEGMENT_FACTOR * st["peak_profile_segments"] + MEMORY_SLACK
        )
        queue_limit = (
            MEMORY_QUEUE_FACTOR * st["peak_queue_length"] + MEMORY_SLACK
        )
        rss_growth = rss_big - rss_small
        assert bt["peak_profile_segments"] <= seg_limit, (
            f"profile grew with trace length: {bt['peak_profile_segments']} "
            f"segments at 1M vs {st['peak_profile_segments']} at 100k "
            "— bounded-memory guarantee violated"
        )
        assert bt["peak_queue_length"] <= queue_limit, (
            f"queue grew with trace length: {bt['peak_queue_length']} at 1M "
            f"vs {st['peak_queue_length']} at 100k"
        )
        # ru_maxrss is a process-lifetime high-water mark, so the RSS
        # delta is only meaningful before any 1M-job leg has raised it —
        # i.e. for the first policy; later policies rely on the
        # structural (per-run) segment/queue gates above
        rss_gate = policy == policies[0]
        if rss_gate:
            assert rss_growth <= MEMORY_RSS_LIMIT_MB, (
                f"peak RSS grew {rss_growth}MB between the 100k and 1M "
                f"runs (limit {MEMORY_RSS_LIMIT_MB}MB) — "
                "trace-length-dependent memory detected"
            )
        scenarios[f"replay_1m_{policy}"] = {
            "jobs": big_n,
            "backend": backend,
            "jobs_per_sec": round(big_n / bt["elapsed_seconds"]),
            "jobs_per_sec_100k": round(small_n / st["elapsed_seconds"]),
            "peak_profile_segments": bt["peak_profile_segments"],
            "peak_profile_segments_100k": st["peak_profile_segments"],
            "peak_queue_length": bt["peak_queue_length"],
            "peak_rss_mb": rss_big,
            "rss_growth_mb": rss_growth,
            "rss_gate_applied": rss_gate,
            "utilization": round(bt["utilization"], 4),
            "ratio_lb": round(bt["ratio_lb"], 4),
            "bounded_memory": True,
        }
        print(
            f"  {policy}: {scenarios[f'replay_1m_{policy}']['jobs_per_sec']:,}"
            f" jobs/s at 1M, peak segments {bt['peak_profile_segments']}, "
            f"RSS growth {rss_growth}MB"
            + (" (bounded)" if rss_gate else " (structural gates only)")
        )

    # -- ingestion + the identity matrix (backend-independent: the
    # auto leg owns them; see full_harness above) ------------------
    if full_harness:
        id_policies = ("easy",) if quick else (
            "fcfs", "greedy", "easy", "conservative"
        )
        id_backends = ("array", "list") if quick else ("list", "tree", "array")
        id_compressions = (True,) if quick else (False, True)
        with tempfile.TemporaryDirectory() as tmp:
            gz_path = pathlib.Path(tmp) / "steady_100k.swf.gz"
            save_swf_trace(
                gz_path, synth_swf_jobs(profile, small_n, m=m, seed=seed), m,
                note=f"{small_n} jobs (steady scenario pack)",
            )
            plain_path = pathlib.Path(tmp) / "steady_100k.swf"
            with gzip.open(gz_path, "rt") as src, open(plain_path, "w") as dst:
                dst.write(src.read())
            print(f"parse-only pass of {gz_path.name} ...")
            best_parse, parsed = _best_of(
                repeats, lambda: sum(1 for _ in iter_swf(gz_path))
            )
            scenarios["ingest_100k_gz"] = {
                "jobs": parsed,
                "jobs_per_sec": round(parsed / best_parse),
                "gz_bytes": gz_path.stat().st_size,
            }
            print(f"  parsed {parsed} jobs at "
                  f"{scenarios['ingest_100k_gz']['jobs_per_sec']:,} jobs/s")

            print(
                f"identity matrix: {len(id_policies)} policies x "
                f"{len(id_backends)} backends x "
                f"{len(id_compressions)} compression(s) vs OnlineSimulation "
                "+ serial-vs-sharded rows ..."
            )
            with gzip.open(gz_path, "rt") as fh:
                instance = read_swf(fh).instance
            checked = 0
            in_memory_s = {}
            reference_jobs = {}
            for policy in id_policies:
                # The conservative policy replans the whole queue on a
                # *copy* of the profile at every event, so its cost scales
                # with profile size: the in-memory reference (unpruned,
                # super-quadratic — minutes at 5k, hours at 100k) runs on a
                # 2k prefix of the same trace (synthetic traces are
                # prefix-stable), the cross-config mutual-identity runs on
                # a 20k prefix, and its replay legs prune on a tight
                # cadence (pruning cadence never changes results — see the
                # prune_before soundness contract — it only bounds the
                # copied profile).
                conservative = policy == "conservative"
                ref_n = 2_000 if conservative else small_n
                mutual_n = 20_000 if conservative else small_n
                engine_opts = {"prune_interval": 256} if conservative else {}
                reference_jobs[policy] = ref_n
                if ref_n == small_n:
                    ref_instance = instance
                else:
                    with gzip.open(gz_path, "rt") as fh:
                        ref_instance = read_swf(fh, max_jobs=ref_n).instance
                t0 = time.perf_counter()
                reference = OnlineSimulation(ref_instance, policy=policy).run()
                in_memory_s[policy] = round(time.perf_counter() - t0, 2)
                summary = summarize(reference.schedule)
                full_starts = None
                for id_backend in id_backends:
                    for compressed in id_compressions:
                        path = gz_path if compressed else plain_path
                        label = (f"{policy}/{id_backend}/"
                                 f"{'gz' if compressed else 'plain'}")
                        streamed = replay_swf(
                            path, policy=policy, profile_backend=id_backend,
                            max_jobs=ref_n if ref_n != small_n else None,
                            record_starts=True, **engine_opts,
                        )
                        assert streamed.starts == reference.schedule.starts, (
                            f"{label}: streamed replay start times diverged "
                            "from the in-memory engine"
                        )
                        for name, value in (
                            ("makespan", summary.makespan),
                            ("total_work", summary.total_work),
                            ("utilization", summary.utilization),
                            ("mean_wait", summary.mean_wait),
                            ("max_wait", summary.max_wait),
                        ):
                            assert streamed.totals[name] == value, (
                                f"{label}: streamed {name} "
                                f"{streamed.totals[name]!r} != in-memory "
                                f"{value!r}"
                            )
                        checked += 1
                        if ref_n != small_n:
                            # longer-length mutual identity across configs
                            full = replay_swf(
                                path, policy=policy,
                                profile_backend=id_backend,
                                max_jobs=mutual_n, record_starts=True,
                                **engine_opts,
                            )
                            if full_starts is None:
                                full_starts = full.starts
                            else:
                                assert full.starts == full_starts, (
                                    f"{label}: mutual replay identity "
                                    "diverged across backend/compression "
                                    "configs"
                                )
                print(f"  {policy}: identical across "
                      f"{len(id_backends) * len(id_compressions)} replay "
                      f"configs at n={ref_n} (in-memory reference "
                      f"{in_memory_s[policy]}s)")

            # serial vs sharded multi-policy rows must match byte for byte
            serial = replay_policies(
                str(gz_path), id_policies, m=m, jobs=1, window=25_000
            )
            sharded = replay_policies(
                str(gz_path), id_policies, m=m, jobs=len(id_policies),
                window=25_000,
            )
            assert serial.rows == sharded.rows, (
                "sharded multi-policy rows diverged from the serial runner"
            )

            # -- batch/epoch identity matrix: per policy, the scalar
            # serial run is the reference and every engine config must
            # reproduce it exactly — totals (minus wall clock), window
            # rows and every start time.  6 configs x 4 policies = the
            # 24-config matrix of the acceptance criteria (quick: x1).
            from repro.simulation.replay import replay_epochs

            engine_configs = (
                ("batched", {"kind": "batched"}),
                ("epoch-k2", {"kind": "epochs", "k": 2, "proc": False}),
                ("epoch-k3", {"kind": "epochs", "k": 3, "proc": False}),
                ("epoch-k7", {"kind": "epochs", "k": 7, "proc": False}),
                ("epoch-k3-proc", {"kind": "epochs", "k": 3, "proc": True}),
            )
            volatile = {"elapsed_seconds"}

            def _identity_view(result):
                totals = {k: v for k, v in result.totals.items()
                          if k not in volatile}
                return totals, result.windows, result.starts

            matrix_checked = 0
            print(
                f"batch/epoch identity matrix: {len(id_policies)} policies "
                f"x {1 + len(engine_configs)} engine configs ..."
            )
            for policy in id_policies:
                conservative = policy == "conservative"
                matrix_n = 20_000 if conservative else small_n
                engine_opts = (
                    {"prune_interval": 256} if conservative else {}
                )
                jobs = list(
                    synth_swf_jobs(profile, matrix_n, m=m, seed=seed)
                )
                reference = ReplayEngine(
                    m, policy=policy, window=25_000, batch=False,
                    record_starts=True, **engine_opts,
                ).run(jobs)
                matrix_checked += 1
                ref_view = _identity_view(reference)
                for label, cfg in engine_configs:
                    if cfg["kind"] == "batched":
                        run = ReplayEngine(
                            m, policy=policy, window=25_000, batch=True,
                            record_starts=True, **engine_opts,
                        ).run(jobs)
                    else:
                        run = replay_epochs(
                            jobs, policy=policy, epochs=cfg["k"], m=m,
                            use_processes=cfg["proc"], window=25_000,
                            record_starts=True, **engine_opts,
                        )
                    assert _identity_view(run) == ref_view, (
                        f"{policy}/{label}: batch/epoch replay diverged "
                        "from the scalar serial reference"
                    )
                    matrix_checked += 1
                print(f"  {policy}: scalar == batched == epoch-sharded "
                      f"across {len(engine_configs)} configs at "
                      f"n={matrix_n}")
            scenarios["identity_100k"] = {
                "jobs": small_n,
                "policies": list(id_policies),
                "backends": list(id_backends),
                "compressions": len(id_compressions),
                "reference_jobs": reference_jobs,
                "replay_configs_checked": checked,
                "batch_epoch_configs_checked": matrix_checked,
                "epoch_ks": [2, 3, 7],
                "identical_schedules": True,
                "identical_metrics": True,
                "serial_equals_sharded": True,
                "in_memory_s": in_memory_s,
            }
            print(
                f"  {checked} replay configs byte-identical to "
                "OnlineSimulation; sharded == serial rows"
            )

    entry = {
        "quick": quick,
        "config": {
            "profile": profile,
            "machines": m,
            "seed": seed,
            "small_jobs": small_n,
            "big_jobs": big_n,
            "policies": list(policies),
            "backend": backend,
            "repeats": repeats,
            "engine": "array+calendar+fused+batched",
        },
        "scenarios": scenarios,
    }
    _append_history(entry, out_dir, REPLAY_THROUGHPUT_JSON)
    return entry


def _profile_backends_tree_baseline(quick: bool) -> Optional[float]:
    """The checked-in tree-backend scheduling seconds, scale-matched."""
    if quick or not PROFILE_BACKENDS_JSON.exists():
        return None  # the checked-in file records the full-scale run only
    data = json.loads(PROFILE_BACKENDS_JSON.read_text())
    if data.get("config", {}).get("quick"):
        return None
    return data.get("scenarios", {}).get("scheduling", {}).get("tree")


def _append_history(
    entry: Dict, out_dir: Optional[pathlib.Path],
    trajectory: pathlib.Path = CORE_THROUGHPUT_JSON,
) -> None:
    """Append one run to a perf-trajectory file.

    Runs append to the checked-in ``BENCH_*.json`` trajectory unless
    ``--out`` redirects them — CI passes ``--out`` so checkout state
    stays pristine.  Entries carry their ``quick`` flag, and the
    regression check only ever compares scale-matched entries.
    """
    path = (pathlib.Path(out_dir) / trajectory.name
            if out_dir is not None else trajectory)
    report = {"history": []}
    if path.exists():
        try:
            report = json.loads(path.read_text())
        except json.JSONDecodeError:
            pass
    report.setdefault("history", []).append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"appended run to {path}")


# ---------------------------------------------------------------------------
# wrappers for the pre-existing harness + pytest suites
# ---------------------------------------------------------------------------

def _run_profile_backends(
    quick: bool, repeats: int, out_dir: Optional[pathlib.Path]
) -> Dict:
    import bench_profile_backends

    argv = ["--repeats", str(repeats)]
    if quick:
        argv.append("--quick")
        # quick numbers are constant-dominated; never clobber the
        # checked-in full-scale baseline with them
        out = (pathlib.Path(out_dir) if out_dir is not None
               else pathlib.Path("/tmp")) / PROFILE_BACKENDS_JSON.name
        argv += ["--out", str(out)]
    elif out_dir is not None:
        out = pathlib.Path(out_dir) / PROFILE_BACKENDS_JSON.name
        argv += ["--out", str(out)]
    else:
        out = PROFILE_BACKENDS_JSON
    rc = bench_profile_backends.main(argv)
    if rc != 0:
        raise SystemExit(rc)
    return json.loads(pathlib.Path(out).read_text())


def _make_pytest_runner(path: pathlib.Path):
    def run(quick: bool, repeats: int, out_dir: Optional[pathlib.Path]):
        cmd = [sys.executable, "-m", "pytest", str(path), "-q"]
        if quick:
            cmd.append("--benchmark-disable")  # assertions only, no timing
        print("$", " ".join(cmd))
        proc = subprocess.run(cmd, cwd=str(REPO_ROOT))
        if proc.returncode != 0:
            raise SystemExit(proc.returncode)
        return {"passed": True, "pytest": path.name}

    return run


register_bench(Benchmark(
    name="core-throughput",
    description="exact engines vs the incremental integer sweep "
                "(LSRC + conservative backfilling + Fraction trace); "
                "appends to BENCH_core_throughput.json",
    runner=bench_core_throughput,
    baseline=CORE_THROUGHPUT_JSON,
    tags=("json",),
))

register_bench(Benchmark(
    name="replay-throughput",
    description="streaming 1M-job trace replay: jobs/sec, bounded-memory "
                "assertions, streamed-vs-in-memory identity at 100k; "
                "appends to BENCH_replay_throughput.json",
    runner=bench_replay_throughput,
    baseline=REPLAY_THROUGHPUT_JSON,
    tags=("json",),
))

register_bench(Benchmark(
    name="profile-backends",
    description="ListProfile vs TreeProfile on large traces; writes "
                "BENCH_profile_backends.json",
    runner=_run_profile_backends,
    baseline=PROFILE_BACKENDS_JSON,
    tags=("json",),
))

for _path in sorted(BENCH_DIR.glob("bench_*.py")):
    if _path.name == "bench_profile_backends.py":
        continue  # registered above as a first-class harness
    _name = _path.stem.replace("bench_", "").replace("_", "-")
    register_bench(Benchmark(
        name=_name,
        description=f"pytest-benchmark suite {_path.name}",
        runner=_make_pytest_runner(_path),
        tags=("pytest",),
    ))


# ---------------------------------------------------------------------------
# profiling + trend merging
# ---------------------------------------------------------------------------

def _profiled_run(
    bench: Benchmark, quick: bool, repeats: int,
    out_dir: Optional[pathlib.Path],
) -> Optional[Dict]:
    """Run one benchmark under cProfile and print the top-20 cumulative
    functions (``repro bench <name> --profile``) — so future perf PRs
    start from data, not guesses."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        report = bench.runner(quick, repeats, out_dir)
    finally:
        profiler.disable()
        print(f"--- cProfile: top 20 cumulative functions ({bench.name}) ---")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(20)
    return report


def merge_trend(
    target: pathlib.Path, out_dir: Optional[pathlib.Path] = None
) -> int:
    """Merge every ``BENCH_*.json`` trajectory into one trend document.

    Files freshly produced into ``out_dir`` take precedence over the
    checked-in copies (CI runs with ``--out``, so the artifact reflects
    tonight's numbers while the checkout stays pristine).  The nightly
    workflow uploads the result as its trend artifact.
    """
    trend: Dict[str, Dict] = {}
    for trajectory in (CORE_THROUGHPUT_JSON, PROFILE_BACKENDS_JSON,
                       REPLAY_THROUGHPUT_JSON):
        path = trajectory
        if out_dir is not None and (pathlib.Path(out_dir) / trajectory.name).exists():
            path = pathlib.Path(out_dir) / trajectory.name
        if not path.exists():
            print(f"  {trajectory.name}: missing, skipped")
            continue
        try:
            trend[trajectory.name] = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"  {trajectory.name}: unreadable ({exc}), skipped",
                  file=sys.stderr)
            return 1
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(trend, indent=2) + "\n")
    print(f"merged {len(trend)} trajectories into {target}")
    return 0


# ---------------------------------------------------------------------------
# regression check
# ---------------------------------------------------------------------------

def _scenario_ratios(scenarios: Dict) -> Dict[str, float]:
    """The machine-independent speedup ratio per scenario."""
    out = {}
    for name, scenario in scenarios.items():
        if isinstance(scenario, dict) and "speedup" in scenario:
            out[name] = float(scenario["speedup"])
    return out


def _baseline_scenarios(bench: Benchmark, quick: bool) -> Optional[Dict]:
    """The checked-in, scale-matched scenario block for ``bench``."""
    if bench.baseline is None or not bench.baseline.exists():
        return None
    data = json.loads(bench.baseline.read_text())
    if "history" in data:  # trajectory file: latest scale-matched entry
        matched = [e for e in data["history"] if e.get("quick") == quick]
        return matched[-1]["scenarios"] if matched else None
    if data.get("config", {}).get("quick") != quick:
        return None
    return data.get("scenarios")


def check_regressions(
    bench: Benchmark, report: Dict, baseline: Optional[Dict],
    quick: bool = False,
) -> List[str]:
    """Speedup ratios that fell below baseline / tolerance.

    ``baseline`` must be captured *before* the bench ran (a run without
    ``--out`` appends itself to the trajectory file — reading the file
    afterwards would compare the run against itself).
    """
    if baseline is None:
        print(f"  {bench.name}: no scale-matched checked-in baseline; "
              "regression check skipped")
        return []
    cap = QUICK_RATIO_CHECK_CAP if quick else RATIO_CHECK_CAP
    measured = _scenario_ratios(report.get("scenarios", {}))
    expected = _scenario_ratios(baseline)
    problems = []
    for name in sorted(set(measured) & set(expected)):
        floor = min(expected[name], cap) / REGRESSION_TOLERANCE
        status = "ok" if measured[name] >= floor else "REGRESSED"
        print(f"  {bench.name}/{name}: speedup {measured[name]:.2f}x "
              f"(baseline {expected[name]:.2f}x, floor {floor:.2f}x) "
              f"{status}")
        if measured[name] < floor:
            problems.append(
                f"{bench.name}/{name}: {measured[name]:.2f}x < "
                f"{floor:.2f}x (baseline {expected[name]:.2f}x capped at "
                f"{cap} / {REGRESSION_TOLERANCE})"
            )
    return problems


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument(
        "names", nargs="*", metavar="name",
        help="benchmarks to run; 'all' runs everything, default runs the "
             "JSON harnesses (core-throughput + profile-backends)",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small sizes / assertions-only for CI smoke")
    parser.add_argument("--check", action="store_true",
                        help="compare speedup ratios against the checked-in "
                             f"baselines (fail on >{REGRESSION_TOLERANCE}x "
                             "regression)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="best-of-N timing for the JSON harnesses")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory for result JSONs (default: repo "
                             "root for full runs; quick runs write only "
                             "here)")
    parser.add_argument("--profile", action="store_true",
                        help="wrap each benchmark in cProfile and print "
                             "the top-20 cumulative functions — perf PRs "
                             "should start from this data")
    parser.add_argument("--merge-trend", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="merge every BENCH_*.json trajectory into one "
                             "trend document at PATH and exit (CI uploads "
                             "it as the nightly artifact)")
    parser.add_argument("--list", action="store_true",
                        help="list registered benchmarks and exit")
    args = parser.parse_args(argv)

    if args.merge_trend is not None:
        return merge_trend(args.merge_trend, args.out)

    if args.list:
        width = max(len(n) for n in SUITE)
        for name in available_benchmarks():
            bench = SUITE[name]
            kind = "json" if "json" in bench.tags else "pytest"
            print(f"{name:<{width}}  [{kind}]  {bench.description}")
        return 0

    if not args.names:
        names = [n for n in available_benchmarks() if "json" in SUITE[n].tags]
    elif args.names == ["all"]:
        names = available_benchmarks()
    else:
        # accept snake_case spellings of the dashed registry names
        names = [
            n if n in SUITE else n.replace("_", "-") for n in args.names
        ]
        unknown = [n for n in names if n not in SUITE]
        if unknown:
            print(f"unknown benchmark(s) {unknown}; try --list",
                  file=sys.stderr)
            return 2

    problems: List[str] = []
    for name in names:
        bench = SUITE[name]
        print(f"=== {name} ===")
        # snapshot the baseline BEFORE the run: a run without --out
        # appends itself to the trajectory file it is checked against
        baseline = (_baseline_scenarios(bench, args.quick)
                    if args.check else None)
        if args.profile:
            report = _profiled_run(bench, args.quick, args.repeats, args.out)
        else:
            report = bench.runner(args.quick, args.repeats, args.out)
        if args.check and report is not None:
            problems.extend(
                check_regressions(bench, report, baseline, args.quick)
            )

    if problems:
        print("\nperformance regressions detected:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
