"""Extension — empirical ratio sweep over α for the policy spectrum.

The paper proves worst cases; this benchmark measures the *typical* case
its model implies: random α-restricted workloads (α-capped job widths,
α-budgeted reservation calendars) scheduled by FCFS, conservative
backfilling, EASY and LSRC, reported as makespan ratios to the certified
lower bound.

Shape claims checked:

* every algorithm stays far below the worst-case ``2/α`` envelope on
  average (worst cases are adversarial, not typical);
* LSRC (aggressive backfilling) dominates FCFS on average;
* ratios degrade as α shrinks (reservations bite harder).
"""


from repro.analysis import format_table, measure_ratio
from repro.core import ReservationInstance
from repro.theory import upper_bound
from repro.workloads import (
    alpha_constrained_instance,
    random_alpha_reservations,
)

ALGOS = ["fcfs", "backfill-cons", "backfill-easy", "lsrc", "lsrc-lpt"]
ALPHAS = [0.25, 0.5, 0.75]
M = 32
N = 40
REPEATS = 5


def _instances(alpha):
    out = []
    for seed in range(REPEATS):
        jobs = alpha_constrained_instance(
            N, M, alpha, p_range=(1, 50), seed=seed
        ).jobs
        res = random_alpha_reservations(
            M, alpha, horizon=300, count=8, seed=100 + seed
        )
        inst = ReservationInstance(m=M, jobs=jobs, reservations=res)
        inst.validate_alpha(alpha)
        out.append(inst)
    return out


def test_ratio_sweep_over_alpha(benchmark, report):
    rows = []
    geo = {}
    for alpha in ALPHAS:
        pool = _instances(alpha)
        for algo in ALGOS:
            rep = measure_ratio(algo, pool, reference="lb")
            g = rep.geo_mean
            geo[(alpha, algo)] = g
            rows.append(
                {
                    "alpha": alpha,
                    "algorithm": algo,
                    "geo_ratio": g,
                    "max_ratio": rep.summary.maximum,
                    "2/alpha": float(upper_bound(alpha)),
                }
            )
            # --- shape assertions ---
            assert rep.summary.maximum <= upper_bound(alpha), (
                f"{algo} exceeded the worst-case envelope at alpha={alpha}"
            )
    for alpha in ALPHAS:
        assert geo[(alpha, "lsrc")] <= geo[(alpha, "fcfs")] + 1e-9, (
            f"LSRC should dominate FCFS on average at alpha={alpha}"
        )
    report(
        "ratio_sweep",
        format_table(rows, title="Empirical ratio vs lower bound"),
    )

    pool = _instances(0.5)
    benchmark(lambda: measure_ratio("lsrc", pool, reference="lb").geo_mean)


def test_reservation_pressure_degrades_ratio(benchmark, report):
    """More reservation load (smaller α budget) => larger LSRC ratios."""
    means = []
    for alpha in (0.75, 0.5, 0.25):
        pool = _instances(alpha)
        rep = measure_ratio("lsrc", pool, reference="lb")
        means.append((alpha, rep.geo_mean))
    report(
        "ratio_pressure",
        format_table(
            [{"alpha": a, "lsrc geo ratio": g} for a, g in means],
            title="LSRC ratio vs alpha budget",
        ),
    )
    # direction check only on the extremes (noise-tolerant)
    assert means[-1][1] >= means[0][1] - 0.05

    pool = _instances(0.25)
    benchmark(lambda: measure_ratio("lsrc", pool, reference="lb").geo_mean)
