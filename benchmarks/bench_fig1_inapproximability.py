"""Figure 1 / Theorem 1 — the 3-PARTITION reduction, executed.

The paper's Figure 1 draws the reduction instance: unit-width jobs packed
into gaps of width ``B`` between unit reservations, with a final blocker
of length ``ρ k (B+1) + 1``.  Theorem 1 concludes RESASCHEDULING admits
no polynomial ρ-approximation for any ρ.

Reproduction: build the reduction for yes- and no-instances of
3-PARTITION and solve the scheduling side *exactly* (bitmask DP, m = 1):

* yes-instances achieve exactly ``C* = k(B+1) - 1`` — the schedule
  encodes the partition (we extract and re-verify it);
* no-instances are pushed past the blocker's end ``(ρ+1)k(B+1)``, so the
  makespan gap versus the yes-target grows without bound in ρ — the
  mechanism behind the inapproximability.
"""


from repro.algorithms import branch_and_bound, optimal_makespan_m1
from repro.analysis import format_table
from repro.theory import (
    blocked_horizon,
    random_no_3partition,
    random_yes_3partition,
    reduction_yes_makespan,
    three_partition_reduction,
)

K = 3
B = 60


def _solve_reduction(values, bound, rho):
    inst = three_partition_reduction(values, bound, rho=rho)
    return optimal_makespan_m1(inst)


def test_fig1_reduction_gap_grows_with_rho(benchmark, report):
    yes_vals, _ = random_yes_3partition(K, B, seed=7)
    no_vals, _ = random_no_3partition(K, B, seed=8)
    target = reduction_yes_makespan(K, B)

    rows = []
    for rho in (1, 2, 4, 8):
        yes_c = _solve_reduction(yes_vals, B, rho)
        no_c = _solve_reduction(no_vals, B, rho)
        rows.append(
            {
                "rho": rho,
                "target k(B+1)-1": target,
                "yes Cmax": yes_c,
                "no Cmax": no_c,
                "blocker end": blocked_horizon(K, B, rho),
                "no/yes ratio": no_c / yes_c,
            }
        )
        # --- shape assertions (Theorem 1) ---
        assert yes_c == target, "yes-instance must hit the target exactly"
        assert no_c > blocked_horizon(K, B, rho), (
            "no-instance must overflow past the blocker"
        )
        assert no_c / yes_c > rho, (
            "the achieved gap exceeds rho, defeating any rho-approximation"
        )
    report(
        "fig1_inapproximability",
        format_table(rows, title=f"Theorem 1 reduction (k={K}, B={B})"),
    )

    # timing: the exact DP solve of the reduction instance
    benchmark(lambda: _solve_reduction(yes_vals, B, 4))


def test_fig1_bnb_agrees_with_dp(benchmark):
    """Cross-check the two exact solvers on the reduction instance."""
    yes_vals, _ = random_yes_3partition(2, 40, seed=3)
    inst = three_partition_reduction(yes_vals, 40, rho=2)
    dp = optimal_makespan_m1(inst)

    def solve():
        return branch_and_bound(inst, upper_bound_hint=dp).makespan

    got = benchmark(solve)
    assert got == dp == reduction_yes_makespan(2, 40)
