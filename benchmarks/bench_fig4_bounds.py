"""Figure 4 — upper and lower bounds for LSRC on α-RESASCHEDULING.

The paper plots three curves against α ∈ (0, 1]: the upper bound ``2/α``
(Proposition 3) and the lower bounds ``B1`` and ``B2`` (Proposition 2
generalised), with the y-axis clipped at 10.  The visual facts: the
curves decrease in α, ``2/α >= B1 >= B2``, the curves step at
``α = 2/k``, and upper and lower bounds nearly touch there.

Reproduction: regenerate the exact series (CSV + ASCII chart) and assert
each visual fact.
"""

from fractions import Fraction

import pytest

from repro.analysis import ascii_plot, format_table, write_csv
from repro.theory import (
    default_alpha_grid,
    figure4_series,
    gap_at,
    lower_bound_b1,
    upper_bound,
)


def test_fig4_series_and_chart(benchmark, report):
    grid = default_alpha_grid(200, lo=0.2)
    rows = benchmark(lambda: figure4_series(grid))

    # --- shape assertions (Figure 4) ---
    for row in rows:
        assert row.upper >= row.b1 >= row.b2 > 1
    uppers = [r.upper for r in rows]
    assert uppers == sorted(uppers, reverse=True), "2/α decreases in α"
    # B2 within each ceil(2/α) plateau decreases in α as well
    assert rows[0].upper == pytest.approx(10.0), "y-range matches the plot"
    assert rows[-1].upper == pytest.approx(2.0)
    assert rows[-1].b1 == pytest.approx(1.5)

    chart = ascii_plot(
        {
            "upper 2/a": [(r.alpha, r.upper) for r in rows],
            "B1": [(r.alpha, r.b1) for r in rows],
            "B2": [(r.alpha, r.b2) for r in rows],
        },
        width=72,
        height=22,
        y_max=10.0,
        y_min=0.0,
        x_label="alpha",
        y_label="performance guarantee",
    )
    csv_rows = [
        {"alpha": r.alpha, "upper": r.upper, "b1": r.b1, "b2": r.b2}
        for r in rows
    ]
    import pathlib

    out = pathlib.Path(__file__).parent / "results" / "fig4_bounds.csv"
    write_csv(csv_rows, str(out))
    report("fig4_bounds", chart + f"\n\nfull series: {out}\n")


def test_fig4_bounds_touch_at_2_over_k(benchmark, report):
    """'the upper and lower bounds can be arbitrarily close to each other
    for some values of the parameter α' — quantified."""
    rows = []
    for k in (2, 3, 4, 6, 8, 16, 32):
        alpha = Fraction(2, k)
        gap = gap_at(alpha)
        rel = gap / upper_bound(alpha)
        rows.append(
            {
                "alpha": f"2/{k}",
                "upper": float(upper_bound(alpha)),
                "B1": float(lower_bound_b1(alpha)),
                "abs gap": float(gap),
                "rel gap": float(rel),
            }
        )
        assert gap < 1
        assert rel <= Fraction(1, k)
    rels = [r["rel gap"] for r in rows]
    assert rels == sorted(rels, reverse=True), "relative gap shrinks with k"
    report(
        "fig4_gap",
        format_table(rows, title="Gap between 2/α and B1 at α = 2/k"),
    )

    benchmark(lambda: [gap_at(Fraction(2, k)) for k in range(2, 40)])


def test_fig4_exact_rational_series(benchmark):
    """The whole figure in exact rational arithmetic (Fraction grid)."""
    grid = [Fraction(i, 100) for i in range(20, 101)]

    def series():
        return figure4_series(grid)

    rows = benchmark(series)
    for row in rows:
        assert isinstance(row.b1, Fraction)
        assert row.upper >= row.b1 >= row.b2
