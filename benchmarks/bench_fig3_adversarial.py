"""Figure 3 / Proposition 2 — the adversarial lower-bound family.

Figure 3 shows, for α = 1/3 (k = 6, m = 180), the optimal schedule
(C* = 6) next to the LSRC schedule under the adversarial list order
(Cmax = 5 × 6 + 1 = 31).  Proposition 2 generalises: for α = 2/k the
ratio is exactly ``2/α - 1 + α/2``.

Reproduction: build the family for several k, run real LSRC under the
bad order, and check *every* annotation of the figure exactly (integer
arithmetic, no tolerance).
"""

from fractions import Fraction


from repro.algorithms import list_schedule
from repro.analysis import format_table
from repro.core import lower_bound
from repro.theory import lower_bound_integer_case, proposition2_instance
from repro.viz import render_gantt


def test_fig3_family_exact_values(benchmark, report):
    rows = []
    for k in (3, 4, 5, 6, 8, 10):
        fam = proposition2_instance(k)
        opt = fam.optimal_schedule()
        opt.verify()
        bad = list_schedule(fam.instance, order=fam.bad_order)
        bad.verify()
        predicted = lower_bound_integer_case(Fraction(2, k))
        rows.append(
            {
                "k": k,
                "alpha": f"2/{k}",
                "m": fam.instance.m,
                "C*": opt.makespan,
                "LSRC(bad)": bad.makespan,
                "ratio": f"{bad.makespan}/{opt.makespan}",
                "2/a-1+a/2": float(predicted),
            }
        )
        # --- shape assertions (Proposition 2) ---
        assert opt.makespan == k
        assert lower_bound(fam.instance) == k  # optimality certificate
        assert bad.makespan == 1 + k * (k - 1)
        assert Fraction(bad.makespan, opt.makespan) == predicted
    report(
        "fig3_adversarial",
        format_table(rows, title="Proposition 2 family (exact)"),
    )

    fam = proposition2_instance(6)
    benchmark(
        lambda: list_schedule(fam.instance, order=fam.bad_order).makespan
    )


def test_fig3_alpha_one_third_annotations(benchmark, report):
    """The figure's own member: k = 6, m = 180, C* = 6, Cmax = 31."""
    fam = proposition2_instance(6)
    assert fam.instance.m == 180
    assert fam.alpha == Fraction(1, 3)

    opt = fam.optimal_schedule()
    bad = list_schedule(fam.instance, order=fam.bad_order)
    assert opt.makespan == 6
    assert bad.makespan == 31  # the paper's "5 x 6 + 1 = 31"
    assert Fraction(31, 6) == lower_bound_integer_case(Fraction(1, 3))

    text = (
        "Figure 3 reproduction (alpha = 1/3, m = 180)\n\n"
        + render_gantt(opt, width=70, max_rows=12, legend=False)
        + "\n\n"
        + render_gantt(bad, width=70, max_rows=12, legend=False)
        + "\n"
    )
    report("fig3_gantt", text)

    benchmark(lambda: fam.optimal_schedule().makespan)


def test_fig3_good_order_restores_optimality(benchmark):
    """Ablation: the ratio is entirely the list order's fault — putting
    the wide jobs first makes LSRC optimal on this family."""
    fam = proposition2_instance(8)
    good = [f"B{i}" for i in range(7)] + [f"A{i}" for i in range(8)]

    def run():
        return list_schedule(fam.instance, order=good).makespan

    got = benchmark(run)
    assert got == fam.optimal_makespan
