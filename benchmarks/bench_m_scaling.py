"""Extension — how guarantees and typical ratios scale with machine count.

Theorem 2's guarantee ``2 − 1/m`` *worsens* (rises towards 2) as the
machine grows.  This benchmark runs the sweep through the experiment
framework (:func:`repro.analysis.run_sweep`) and measures what actually
happens to the *typical* case when the workload scales with the machine
(n = 5m jobs, widths up to m):

* the guarantee curve rises with m (exactly ``2 − 1/m``);
* the measured typical-case ratio stays essentially *flat* (≈ 1.1–1.2):
  relative packing difficulty is scale-free for proportionally scaled
  workloads, so the growing gap to the guarantee is entirely the
  worst-case construction's doing;
* every measured ratio stays far inside the envelope.
"""


from repro.analysis import format_table, geometric_mean, run_sweep
from repro.algorithms import ListScheduler
from repro.core import ratio_to_lower_bound
from repro.theory import graham_ratio
from repro.workloads import uniform_instance

MS = [4, 8, 16, 32, 64]
REPEATS = 4


def _runner(point):
    m = point["m"]
    inst = uniform_instance(
        5 * m, m, p_range=(1, 40), q_range=(1, m), seed=point.seed
    )
    schedule = ListScheduler().schedule(inst)
    return {
        "ratio": float(ratio_to_lower_bound(schedule)),
        "guarantee": float(graham_ratio(m)),
    }


def test_typical_ratio_falls_while_guarantee_rises(benchmark, report):
    result = run_sweep({"m": MS}, _runner, repeats=REPEATS)
    rows = []
    geo = {}
    for m in MS:
        ratios = [row["ratio"] for row in result.filtered(m=m)]
        geo[m] = geometric_mean(ratios)
        rows.append(
            {
                "m": m,
                "geo_ratio": geo[m],
                "max_ratio": max(ratios),
                "2-1/m": float(graham_ratio(m)),
            }
        )
        # --- envelope: measured <= guarantee * (LB <= C* slack is free) ---
        assert max(ratios) <= 2.0, "ratio vs lower bound left the envelope"
    report(
        "m_scaling",
        format_table(rows, title="Ratio vs machine count (n = 5m jobs)")
        + f"\nsweep of {len(result.rows)} runs in "
        f"{result.elapsed_seconds:.2f}s\n",
    )
    # --- shape assertions ---
    guarantees = [float(graham_ratio(m)) for m in MS]
    assert guarantees == sorted(guarantees), "guarantee rises with m"
    # typical case is flat: the whole range stays within a narrow band,
    # nowhere near the rising guarantee
    assert max(geo.values()) - min(geo.values()) < 0.15
    assert max(geo.values()) < 1.4

    benchmark(
        lambda: ListScheduler().schedule(
            uniform_instance(80, 16, q_range=(1, 16), seed=0)
        ).makespan
    )
