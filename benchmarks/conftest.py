"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or an extension
the paper implies) and:

* asserts the *shape* claims — who wins, by what factor, where the
  crossovers fall — so a green run means the artifact reproduced;
* writes the reproduced rows/series to ``benchmarks/results/<name>.txt``
  (pytest captures stdout, so files are the durable record);
* times the computational core via pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report():
    """Write a named report file and echo it (visible with ``-s``)."""

    def _report(name: str, text: str) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text)
        print(f"\n===== {name} =====\n{text}")
        return str(path)

    return _report
