"""Section 2.1 — offline-to-online by batch doubling, plus the online
policy spectrum under a realistic arrival stream.

"any off-line algorithm may be used in an on-line fashion, with a
doubling factor for the performance ratio" (Shmoys–Wein–Williamson).

Shape claims:

* batch-doubling LSRC stays within ``2 (2 - 1/m)`` of the clairvoyant
  optimum's lower bound on arrival workloads;
* the event-driven online policies (fcfs/easy/conservative/greedy) all
  produce verified schedules, ordered on average exactly like their
  offline counterparts (greedy best, fcfs worst);
* online greedy equals offline LSRC when all jobs are present at 0.
"""


from repro.algorithms import batch_doubling_schedule, list_schedule
from repro.analysis import format_table, geometric_mean
from repro.core import ReservationInstance, lower_bound
from repro.simulation import simulate
from repro.workloads import (
    feitelson_instance,
    periodic_maintenance,
    uniform_instance,
    with_poisson_releases,
)


def _arrival_workloads():
    out = []
    for seed in range(5):
        base = uniform_instance(30, 16, p_range=(1, 40), q_range=(1, 8), seed=seed)
        timed = with_poisson_releases(base, rate=0.05, seed=seed + 50)
        res = periodic_maintenance(16, 4, period=200, duration=25, count=4)
        out.append(
            ReservationInstance(m=16, jobs=timed.jobs, reservations=res)
        )
    return out


def test_batch_doubling_guarantee(benchmark, report):
    rows = []
    for idx, inst in enumerate(_arrival_workloads()):
        s = batch_doubling_schedule(inst)
        s.verify()
        lb = lower_bound(inst)
        ratio = s.makespan / lb
        rows.append(
            {"workload": idx, "batch Cmax": s.makespan, "LB": float(lb),
             "ratio": ratio}
        )
        # 2 * (2 - 1/m) versus C*; LB <= C* makes this a valid envelope
        assert ratio <= 2 * (2 - 1 / inst.m) + 1e-9
    report(
        "online_batch",
        format_table(rows, title="Batch-doubling LSRC vs lower bound"),
    )

    inst = _arrival_workloads()[0]
    benchmark(lambda: batch_doubling_schedule(inst).makespan)


def test_online_policy_spectrum(benchmark, report):
    pool = _arrival_workloads()
    rows = []
    geo = {}
    for policy in ("fcfs", "conservative", "easy", "greedy"):
        ratios = []
        for inst in pool:
            result = simulate(inst, policy)
            result.schedule.verify()
            ratios.append(result.makespan / float(lower_bound(inst)))
        geo[policy] = geometric_mean(ratios)
        rows.append({"policy": policy, "geo_ratio": geo[policy]})
    report(
        "online_policies",
        format_table(rows, title="Online policies under Poisson arrivals"),
    )
    # --- shape assertion: aggressive end beats the FCFS end on average ---
    assert geo["greedy"] <= geo["fcfs"] + 1e-9

    inst = pool[0]
    benchmark(lambda: simulate(inst, "greedy").makespan)


def test_online_greedy_equals_offline_lsrc_offline_case(benchmark):
    inst = feitelson_instance(40, 16, seed=3)
    online = simulate(inst, "greedy").schedule
    offline = list_schedule(inst)
    assert online.starts == offline.starts

    benchmark(lambda: simulate(inst, "greedy").makespan)
