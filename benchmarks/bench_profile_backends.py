#!/usr/bin/env python3
"""Profile-backend benchmark: list vs tree vs array on large traces.

Measures the three profile workloads that dominate scheduler cost and
asserts *identical* scheduling results across backends while timing them:

* ``scheduling`` — an ``earliest_fit`` + ``reserve`` placement loop
  (conservative backfilling's engine) over an SWF-style trace of rigid
  jobs with release times, on a machine carrying periodic-maintenance
  reservations, executed through the :mod:`repro.run` experiment layer
  (the trace is a registered workload, the differential check a
  registered metric), pinned to ``timebase="exact"`` since the integer
  fast path deliberately bypasses the backends being measured.
* ``mutation churn`` — interleaved ``reserve``/``add`` pairs (EASY
  backfilling's shadow probing pattern) on an already-fragmented profile.
* ``windowed queries`` — ``area`` / ``min_capacity`` /
  ``first_time_area_reaches`` over windows deep inside a profile with
  tens of thousands of breakpoints (quantifies the bisect-to-window fix).

Historical note: the tree once won the first two scenarios ~9-17x
against the list backend's O(n)-per-mutation rebuild.  Since the list
backend learned O(window) local mutation (``_shift_window``), the flat
arrays win sweep-local mutation on constants, and the tree's asymptotic
edge shows where it structurally must — wide windowed *queries* answered
from subtree aggregates (~100x).  The headline gate therefore sits on
``windowed_queries``; scheduling/churn are tracked for the trajectory.

Run directly (writes ``BENCH_profile_backends.json`` at the repo root)::

    python benchmarks/bench_profile_backends.py            # full: 10k jobs
    python benchmarks/bench_profile_backends.py --quick    # CI smoke

The differential guarantee — every job starts at the same time under both
backends — is asserted on every run, so the speedup never silently buys a
different schedule.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.core.instance import ReservationInstance  # noqa: E402
from repro.core.job import Job  # noqa: E402
from repro.core.metrics import register_metric  # noqa: E402
from repro.core.profiles import (  # noqa: E402
    ArrayProfile,
    ListProfile,
    TreeProfile,
    resolve_backend,
)
from repro.run import ExperimentSpec, Runner, WorkloadSpec  # noqa: E402
from repro.workloads.registry import register_workload  # noqa: E402
from repro.workloads.reservations import periodic_maintenance  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BACKENDS = {"list": ListProfile, "tree": TreeProfile, "array": ArrayProfile}


# ---------------------------------------------------------------------------
# workload generation (SWF-flavoured: heavy-tailed sizes, Poisson arrivals)
# ---------------------------------------------------------------------------

def make_trace(n_jobs: int, n_reservations: int, m: int, seed: int):
    """Jobs with spread-out releases plus a maintenance calendar."""
    rng = random.Random(seed)
    jobs = []
    t = 0
    for i in range(n_jobs):
        t += rng.randint(0, 6)  # arrival gaps keep ~hundreds of jobs in flight
        p = rng.choice([1, 2, 3, 5, 8, 13, 21, 34, 55])
        q = min(m, rng.choice([1, 1, 2, 2, 4, 8, 16, 32, 64]))
        jobs.append(Job(id=i, p=p, q=q, release=t))
    horizon = t + 200
    period = max(2, horizon // max(1, n_reservations))
    reservations = periodic_maintenance(
        m=m,
        q=max(1, m // 8),
        period=period,
        duration=max(1, period // 3),
        count=n_reservations,
        first_start=1,
    )
    return ReservationInstance(
        m=m, jobs=tuple(jobs), reservations=reservations, name=f"swf{seed}"
    )


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------

def _starts_checksum(schedule) -> int:
    """Order-independent digest of every (job, start) pair — the
    differential guarantee as a registered metric extractor."""
    blob = repr(sorted(schedule.starts.items(), key=lambda kv: str(kv[0])))
    return int(hashlib.sha256(blob.encode()).hexdigest()[:12], 16)


def bench_scheduling(instance, repeats: int):
    """Conservative-backfilling pass over the whole trace, executed per
    backend through the experiment layer (:mod:`repro.run`): the trace
    and the differential check are registered as a workload / a metric,
    and one single-point spec per backend drives the grid Runner."""
    register_workload(
        "bench-swf-trace", lambda seed=0, **_: instance, overwrite=True
    )
    register_metric("bench-starts-checksum", _starts_checksum, overwrite=True)
    result = {}
    rows = {}
    for name in BACKENDS:
        spec = ExperimentSpec(
            name=f"bench-profile-{name}",
            algorithms=("backfill-cons",),
            workloads=(WorkloadSpec("bench-swf-trace"),),
            seeds=(0,),
            metrics=("makespan", "bench-starts-checksum"),
            profile_backends=(name,),
            # pin the exact engine: this bench measures the *backends*,
            # and the integer fast path (timebase="auto") bypasses them
            timebases=("exact",),
        )
        best = math.inf
        for _ in range(repeats):
            t0 = time.perf_counter()
            run = Runner(jobs=1).run(spec)
            best = min(best, time.perf_counter() - t0)
        result[name] = best
        rows[name] = run.rows[0]
    reference = next(iter(BACKENDS))
    for name in BACKENDS:
        assert (
            rows[name]["makespan"] == rows[reference]["makespan"]
            and rows[name]["bench-starts-checksum"]
            == rows[reference]["bench-starts-checksum"]
        ), "backends disagree on the schedule — differential check failed"
    return result


def _fragmented_lists(n_breakpoints: int):
    """A big sawtooth profile: every mutation touches a crowded region."""
    times = list(range(n_breakpoints))
    caps = [8 + (i * 7919) % 23 for i in range(n_breakpoints)]
    return times, caps


def bench_mutation_churn(n_breakpoints: int, ops: int, seed: int, repeats: int):
    """reserve/add probe pairs (EASY's shadow pattern) on a fragmented
    profile: the list backend pays a full O(n) re-merge per call."""
    rng = random.Random(seed)
    times, caps = _fragmented_lists(n_breakpoints)
    probes = []
    for _ in range(ops):
        start = rng.randint(0, n_breakpoints - 50)
        dur = rng.randint(1, 40)
        amount = rng.randint(1, 8)
        probes.append((start, dur, amount))
    result = {}
    for name in BACKENDS:
        profile = resolve_backend(name)(times, caps)
        best = math.inf
        for _ in range(repeats):
            t0 = time.perf_counter()
            for start, dur, amount in probes:
                if profile.min_capacity(start, start + dur) >= amount:
                    profile.reserve(start, dur, amount)
                    profile.add(start, dur, amount)
            best = min(best, time.perf_counter() - t0)
        result[name] = best
    return result


def bench_windowed_queries(n_breakpoints: int, queries: int, seed: int, repeats: int):
    """Wide-window area/min_capacity/first_time_area_reaches: the tree
    answers from subtree aggregates, the list walks every segment in the
    window (though no longer the segments *before* it — that is the
    bisect-to-window fix, asserted separately in the tests)."""
    rng = random.Random(seed)
    times, caps = _fragmented_lists(n_breakpoints)
    span = n_breakpoints // 3
    work = 18 * span  # crosses ~ span segments of mean capacity ~19
    windows = []
    for _ in range(queries):
        a = rng.randint(0, n_breakpoints - span - 2)
        windows.append((a, a + span))
    result = {}
    answers = {}
    for name in BACKENDS:
        profile = resolve_backend(name)(times, caps)
        best = math.inf
        got = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            acc = 0
            for a, b in windows:
                acc += profile.area(a, b)
                acc += profile.min_capacity(a, b)
                t = profile.first_time_area_reaches(work, start=a)
                acc += int(t)
            got = acc
            best = min(best, time.perf_counter() - t0)
        result[name] = best
        answers[name] = got
    reference = answers["list"]
    for name, got in answers.items():
        assert got == reference, f"windowed query results diverged ({name})"
    return result


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def speedup(timings):
    """The tracked list/tree ratio (the historical gate axis)."""
    return timings["list"] / timings["tree"] if timings["tree"] > 0 else math.inf


def speedup_array(timings):
    """list/array: how far the flat int64 kernel beats the reference."""
    return timings["list"] / timings["array"] if timings["array"] > 0 else math.inf


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--jobs", type=int, default=None,
                        help="trace size (default 10000, quick 800)")
    parser.add_argument("--reservations", type=int, default=None,
                        help="reservation count (default 1000, quick 80)")
    parser.add_argument("--machines", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=1,
                        help="take the best of this many timed runs")
    parser.add_argument("--out", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_profile_backends.json")
    args = parser.parse_args(argv)

    n_jobs = args.jobs if args.jobs is not None else (800 if args.quick else 10_000)
    n_res = args.reservations if args.reservations is not None else (
        80 if args.quick else 1_000
    )
    n_bp = 2_000 if args.quick else 20_000
    churn_ops = 100 if args.quick else 600
    n_queries = 50 if args.quick else 150

    print(f"building trace: {n_jobs} jobs, {n_res} reservations, "
          f"m={args.machines}, seed={args.seed}")
    t0 = time.perf_counter()
    instance = make_trace(n_jobs, n_res, args.machines, args.seed)
    build_s = time.perf_counter() - t0
    print(f"  built in {build_s:.2f}s "
          f"({len(instance.availability_profile().breakpoints)} breakpoints)")

    report = {
        "config": {
            "jobs": n_jobs,
            "reservations": n_res,
            "machines": args.machines,
            "seed": args.seed,
            "quick": args.quick,
            "profile_breakpoints": n_bp,
        },
        "scenarios": {},
    }

    print("scenario 1/3: earliest_fit-heavy scheduling pass ...")
    sched = bench_scheduling(instance, args.repeats)
    report["scenarios"]["scheduling"] = {
        **{k: round(v, 4) for k, v in sched.items()},
        "speedup": round(speedup(sched), 2),
        "speedup_array": round(speedup_array(sched), 2),
        "identical_schedules": True,
    }
    print(f"  list {sched['list']:.3f}s  tree {sched['tree']:.3f}s  "
          f"array {sched['array']:.3f}s  "
          f"speedup {speedup(sched):.1f}x (schedules identical)")

    print("scenario 2/3: reserve/add mutation churn ...")
    churn = bench_mutation_churn(n_bp, churn_ops, args.seed, args.repeats)
    report["scenarios"]["mutation_churn"] = {
        **{k: round(v, 4) for k, v in churn.items()},
        "ops": churn_ops,
        "breakpoints": n_bp,
        "speedup": round(speedup(churn), 2),
        "speedup_array": round(speedup_array(churn), 2),
    }
    print(f"  list {churn['list']:.3f}s  tree {churn['tree']:.3f}s  "
          f"array {churn['array']:.3f}s  speedup {speedup(churn):.1f}x")

    print("scenario 3/3: windowed queries on a big profile ...")
    win = bench_windowed_queries(n_bp, n_queries, args.seed, args.repeats)
    report["scenarios"]["windowed_queries"] = {
        **{k: round(v, 4) for k, v in win.items()},
        "breakpoints": n_bp,
        "queries": n_queries,
        "speedup": round(speedup(win), 2),
        "speedup_array": round(speedup_array(win), 2),
    }
    print(f"  list {win['list']:.3f}s  tree {win['tree']:.3f}s  "
          f"array {win['array']:.3f}s  speedup {speedup(win):.1f}x")

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    # The 5x acceptance gate sits on the scenario the tree backend is
    # *for* (windowed queries from subtree aggregates) and only at full
    # scale: small runs are dominated by constants, where the list wins.
    if not args.quick and n_bp >= 20_000 and speedup(win) < 5:
        print("WARNING: windowed-query speedup below the 5x acceptance target",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
