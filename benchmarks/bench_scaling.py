"""Engineering benchmarks — substrate and scheduler scaling.

Not a paper figure: these benches track the computational cost of the
pieces every experiment relies on (profile operations, LSRC event sweep,
verification), so performance regressions in the substrate are caught by
the same harness that regenerates the science.
"""

import pytest

from repro.algorithms import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FCFSScheduler,
    ListScheduler,
)
from repro.core import ResourceProfile
from repro.workloads import (
    feitelson_instance,
    periodic_maintenance,
    uniform_instance,
)


@pytest.mark.parametrize("n", [100, 500, 2000])
def test_scaling_lsrc(benchmark, n):
    inst = uniform_instance(n, 64, p_range=(1, 100), q_range=(1, 32), seed=1)
    result = benchmark(lambda: ListScheduler().schedule(inst))
    assert len(result.starts) == n


@pytest.mark.parametrize("n", [100, 500, 2000])
def test_scaling_conservative(benchmark, n):
    inst = uniform_instance(n, 64, p_range=(1, 100), q_range=(1, 32), seed=2)
    result = benchmark(lambda: ConservativeBackfillScheduler().schedule(inst))
    assert len(result.starts) == n


@pytest.mark.parametrize("n", [100, 500])
def test_scaling_easy(benchmark, n):
    inst = uniform_instance(n, 64, p_range=(1, 100), q_range=(1, 32), seed=3)
    result = benchmark(lambda: EasyBackfillScheduler().schedule(inst))
    assert len(result.starts) == n


def test_scaling_fcfs_large(benchmark):
    inst = feitelson_instance(2000, 128, seed=4)
    result = benchmark(lambda: FCFSScheduler().schedule(inst))
    assert len(result.starts) == 2000


def test_scaling_profile_operations(benchmark):
    """reserve + earliest_fit churn with a maintenance calendar."""
    reservations = periodic_maintenance(
        64, 16, period=100, duration=20, count=50
    )

    def churn():
        profile = ResourceProfile.from_reservations(64, reservations)
        t = 0
        for i in range(500):
            s = profile.earliest_fit(8, 13, after=t)
            profile.reserve(s, 13, 8)
            t = s if i % 7 else 0
        return profile

    profile = benchmark(churn)
    assert profile.capacity_at(0) <= 64


def test_scaling_verification(benchmark):
    inst = uniform_instance(1000, 64, q_range=(1, 32), seed=5)
    schedule = ListScheduler().schedule(inst)
    benchmark(lambda: schedule.violations())
    schedule.verify()
