"""Extension — Graham timing anomalies in the rigid-job model.

The appendix's Theorem 2 descends from Graham's anomaly papers
("Bounds on multiprocessing timing anomalies", refs [11, 12]).  This
benchmark quantifies the phenomenon in the paper's own model: favourable
perturbations (shorter job, fewer jobs, more processors) that *increase*
the LSRC makespan.

Shape claims:

* the deterministic capacity witness reproduces exactly
  (m = 4 → 5 raises Cmax 18 → 20 around a reservation);
* randomized search finds witnesses of all three kinds;
* witnesses are genuine: both sides re-verified by the scheduler.
"""


from repro.algorithms import ListScheduler
from repro.analysis import (
    classic_capacity_anomaly,
    find_anomalies,
)
from repro.analysis.tables import format_table


def test_classic_witness_reproduces(benchmark, report):
    witness = benchmark(classic_capacity_anomaly)
    assert witness.base_makespan == 18
    assert witness.perturbed_makespan == 20
    assert witness.base_instance.m == 4
    assert witness.perturbed_instance.m == 5
    report(
        "anomaly_classic",
        "Deterministic capacity anomaly (reservation on [10, 14), q=3):\n"
        f"  {witness.description}\n"
        "  adding a 5th processor promotes the q=3 job into an earlier\n"
        "  slot whose occupancy pushes a later job past the reservation.\n",
    )


def test_anomaly_search_census(benchmark, report):
    witnesses = find_anomalies(n_trials=3000, seed=11)
    assert witnesses, "no anomalies in 3000 trials"
    rows = []
    for w in witnesses[:12]:
        rows.append(
            {
                "kind": w.kind,
                "m": w.base_instance.m,
                "n": w.base_instance.n,
                "n_res": w.base_instance.n_reservations,
                "Cmax before": w.base_makespan,
                "Cmax after": w.perturbed_makespan,
                "regression": w.regression,
            }
        )
        # genuine: replay both sides
        base = ListScheduler().schedule(w.base_instance)
        pert = ListScheduler().schedule(w.perturbed_instance)
        assert base.makespan == w.base_makespan
        assert pert.makespan == w.perturbed_makespan
    kinds = {w.kind for w in witnesses}
    text = format_table(
        rows, title=f"Anomaly census: {len(witnesses)} witnesses in 3000 trials"
    )
    text += f"\nkinds found: {sorted(kinds)}\n"
    report("anomaly_census", text)

    benchmark(lambda: find_anomalies(n_trials=200, seed=12))
