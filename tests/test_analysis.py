"""Tests for the analysis toolkit: stats, tables, plots, sweeps, ratios."""

import math

import pytest

from repro.analysis import (
    ascii_histogram,
    ascii_plot,
    compare_algorithms,
    confidence_interval,
    describe,
    format_markdown,
    format_table,
    geometric_mean,
    mean,
    measure_ratio,
    quantile,
    run_sweep,
    std,
    write_csv,
)
from repro.errors import InvalidInstanceError
from repro.workloads import uniform_instance


class TestStats:
    def test_mean_std(self):
        assert mean([1, 2, 3]) == 2
        assert std([2, 4]) == pytest.approx(math.sqrt(2))
        assert std([5]) == 0.0

    def test_mean_empty(self):
        with pytest.raises(InvalidInstanceError):
            mean([])

    def test_confidence_interval_contains_mean(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo, hi = confidence_interval(xs)
        assert lo < 3.0 < hi

    def test_ci_single_sample(self):
        assert confidence_interval([7.0]) == (7.0, 7.0)

    def test_describe(self):
        s = describe([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.ci_low <= s.mean <= s.ci_high
        assert "mean" in str(s)

    def test_quantile(self):
        xs = [1, 2, 3, 4, 5]
        assert quantile(xs, 0) == 1
        assert quantile(xs, 1) == 5
        assert quantile(xs, 0.5) == 3
        assert quantile(xs, 0.25) == 2
        with pytest.raises(InvalidInstanceError):
            quantile(xs, 2)

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(InvalidInstanceError):
            geometric_mean([1, 0])


class TestTables:
    ROWS = [
        {"name": "lsrc", "ratio": 1.25, "ok": True},
        {"name": "fcfs", "ratio": 2.0, "ok": False},
    ]

    def test_format_table_alignment(self):
        text = format_table(self.ROWS, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "lsrc" in text and "fcfs" in text
        assert "yes" in text and "no" in text  # bool rendering

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_markdown(self):
        md = format_markdown(self.ROWS)
        assert md.startswith("| name | ratio | ok |")
        assert "|---|---|---|" in md

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        text = write_csv(self.ROWS, str(path))
        assert path.read_text() == text
        assert text.splitlines()[0] == "name,ratio,ok"
        assert len(text.splitlines()) == 3

    def test_column_selection(self):
        text = format_table(self.ROWS, columns=["ratio"])
        assert "lsrc" not in text


class TestPlotting:
    def test_ascii_plot_contains_series(self):
        series = {
            "up": [(x / 10, x / 10) for x in range(11)],
            "down": [(x / 10, 1 - x / 10) for x in range(11)],
        }
        chart = ascii_plot(series, width=40, height=10)
        assert "up" in chart and "down" in chart
        assert "*" in chart and "+" in chart

    def test_y_clipping(self):
        series = {"explodes": [(x / 10, 10.0**x) for x in range(1, 8)]}
        chart = ascii_plot(series, width=30, height=8, y_max=100)
        assert "explodes" in chart

    def test_plot_validation(self):
        with pytest.raises(InvalidInstanceError):
            ascii_plot({})
        with pytest.raises(InvalidInstanceError):
            ascii_plot({"x": [(0, 0)]}, width=2, height=2)

    def test_histogram(self):
        text = ascii_histogram([1, 1, 2, 3, 3, 3], bins=3, title="demo")
        assert text.startswith("demo")
        assert "#" in text

    def test_histogram_empty(self):
        with pytest.raises(InvalidInstanceError):
            ascii_histogram([])


class TestSweep:
    def test_cartesian_product(self):
        result = run_sweep(
            {"a": [1, 2], "b": ["x", "y", "z"]},
            lambda point: {"echo": (point["a"], point["b"])},
        )
        assert len(result.rows) == 6
        assert result.rows[0]["echo"] == (1, "x")
        assert result.column("a").count(1) == 3

    def test_repeats_and_seed_stability(self):
        seeds = {}

        def runner(point):
            seeds.setdefault((point["a"], point["repeat"]), point.seed)
            return {"seed": point.seed}

        r1 = run_sweep({"a": [1, 2]}, runner, repeats=2)
        r2 = run_sweep({"a": [1, 2]}, runner, repeats=2)
        assert [row["seed"] for row in r1.rows] == [
            row["seed"] for row in r2.rows
        ]

    def test_filtered(self):
        result = run_sweep(
            {"a": [1, 2]}, lambda p: {"val": p["a"] * 10}
        )
        assert result.filtered(a=2)[0]["val"] == 20

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            run_sweep({}, lambda p: {})
        with pytest.raises(InvalidInstanceError):
            run_sweep({"a": [1]}, lambda p: {}, repeats=0)


class TestRatioMeasurement:
    def test_measure_against_lb(self):
        instances = [uniform_instance(10, 8, seed=s) for s in range(4)]
        report = measure_ratio("lsrc", instances, reference="lb")
        assert len(report.samples) == 4
        assert all(s.ratio >= 1.0 - 1e-9 for s in report.samples)
        assert report.worst.ratio == max(s.ratio for s in report.samples)
        row = report.as_row()
        assert row["algorithm"] == "lsrc"

    def test_measure_against_opt(self):
        instances = [uniform_instance(5, 4, seed=s) for s in range(3)]
        report = measure_ratio("lsrc", instances, reference="opt")
        # vs the true optimum the ratio is within Graham's bound
        for s in report.samples:
            assert 1.0 - 1e-9 <= s.ratio <= 2.0

    def test_compare_algorithms(self):
        instances = [uniform_instance(8, 8, seed=s) for s in range(3)]
        rows = compare_algorithms(["lsrc", "fcfs"], instances)
        assert [r["algorithm"] for r in rows] == ["lsrc", "fcfs"]

    def test_bad_reference(self):
        with pytest.raises(InvalidInstanceError):
            measure_ratio("lsrc", [], reference="vibes")
