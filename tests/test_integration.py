"""Cross-module integration tests: the paper's guarantees exercised end to
end on generated workloads, plus full-pipeline smoke paths."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    ListScheduler,
    available_schedulers,
    branch_and_bound,
    get_scheduler,
)
from repro.analysis import format_table, measure_ratio
from repro.core import (
    ReservationInstance,
    lower_bound,
    summarize,
)
from repro.simulation import simulate
from repro.theory import graham_ratio, upper_bound
from repro.viz import render_gantt, schedule_to_svg
from repro.workloads import (
    SAMPLE_SWF,
    alpha_constrained_instance,
    random_alpha_reservations,
    read_swf,
    uniform_instance,
)


def make_alpha_instance(m, alpha, n, seed):
    """An α-RESASCHEDULING instance: α-capped jobs + α-budgeted reservations."""
    jobs = alpha_constrained_instance(n, m, alpha, p_range=(1, 6), seed=seed).jobs
    reservations = random_alpha_reservations(
        m, alpha, horizon=30, count=3, seed=seed + 1
    )
    inst = ReservationInstance(m=m, jobs=jobs, reservations=reservations)
    inst.validate_alpha(alpha)
    return inst


class TestPaperGuaranteesEndToEnd:
    @pytest.mark.parametrize("alpha", [Fraction(1, 2), Fraction(1, 4)])
    def test_proposition3_alpha_guarantee_against_exact_optimum(self, alpha):
        """Cmax(LSRC) <= (2/α) C*max on α-restricted instances."""
        for seed in range(6):
            inst = make_alpha_instance(8, alpha, n=5, seed=seed)
            lsrc = ListScheduler().schedule(inst)
            lsrc.verify()
            opt = branch_and_bound(inst).makespan
            assert lsrc.makespan <= upper_bound(alpha) * opt + 1e-9, (
                f"alpha={alpha}, seed={seed}: {lsrc.makespan} vs opt {opt}"
            )

    def test_theorem2_on_every_priority_rule(self):
        """Theorem 2 holds for *any* list order — test all rules."""
        for seed in range(3):
            inst = uniform_instance(5, 4, p_range=(1, 6), seed=seed)
            opt = branch_and_bound(inst).makespan
            for rule in ("fifo", "lpt", "spt", "laf", "widest", "narrowest"):
                s = ListScheduler(rule).schedule(inst)
                assert s.makespan <= graham_ratio(4) * opt + 1e-9

    def test_every_registered_scheduler_runs_the_full_pipeline(self):
        """Registry -> schedule -> verify -> metrics -> render for all."""
        inst = make_alpha_instance(8, Fraction(1, 2), n=8, seed=3)
        rows = []
        for name in available_schedulers():
            if name == "optimal":
                continue  # exponential; covered separately
            s = get_scheduler(name).schedule(inst)
            s.verify()
            metrics = summarize(s)
            rows.append({"algorithm": name, "makespan": metrics.makespan})
            assert metrics.makespan >= lower_bound(inst) - 1e-9
        table = format_table(rows)
        assert all(name in table for name, _ in
                   [(r["algorithm"], r) for r in rows])

    def test_swf_to_simulation_pipeline(self):
        """Trace file -> instance -> online simulation -> verified schedule
        -> renderings."""
        inst = read_swf(SAMPLE_SWF).instance
        result = simulate(inst, "easy")
        result.schedule.verify()
        gantt = render_gantt(result.schedule)
        assert "Cmax" in gantt
        svg = schedule_to_svg(result.schedule)
        assert svg.startswith("<svg")

    def test_ratio_harness_vs_guarantee(self):
        """measure_ratio against the exact optimum stays within Theorem 2."""
        instances = [
            uniform_instance(5, 4, p_range=(1, 5), seed=s) for s in range(5)
        ]
        report = measure_ratio("lsrc", instances, reference="opt")
        assert report.worst.ratio <= float(graham_ratio(4)) + 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_alpha_pipeline_property(seed):
    """Random α-instances: validation, scheduling, verification, and the
    2/α envelope versus the certified lower bound all hold together."""
    alpha = Fraction(1, 2)
    inst = make_alpha_instance(8, alpha, n=6, seed=seed)
    s = ListScheduler().schedule(inst)
    s.verify()
    lb = lower_bound(inst)
    # lower_bound <= C* so this is implied by Proposition 3:
    assert s.makespan <= float(upper_bound(alpha)) * lb * 1.0 + 1e-9 or (
        s.makespan <= upper_bound(alpha) * branch_and_bound(inst).makespan
    )
