"""Tests for the availability profile — including property tests against a
naive reference implementation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Reservation, ResourceProfile
from repro.errors import CapacityError, InvalidInstanceError

from conftest import NaiveCapacity


class TestConstruction:
    def test_constant(self):
        p = ResourceProfile.constant(4)
        assert p.capacity_at(0) == 4
        assert p.capacity_at(10**9) == 4
        assert p.breakpoints == (0,)

    def test_must_start_at_zero(self):
        with pytest.raises(InvalidInstanceError):
            ResourceProfile([1, 2], [1, 2])

    def test_strictly_increasing_times(self):
        with pytest.raises(InvalidInstanceError):
            ResourceProfile([0, 2, 2], [1, 2, 3])

    def test_negative_capacity_rejected(self):
        with pytest.raises(InvalidInstanceError):
            ResourceProfile([0], [-1])

    def test_non_integer_capacity_rejected(self):
        with pytest.raises(InvalidInstanceError):
            ResourceProfile([0], [1.5])

    def test_merges_equal_segments(self):
        p = ResourceProfile([0, 1, 2], [3, 3, 4])
        assert p.breakpoints == (0, 2)

    def test_from_reservations(self):
        res = [Reservation(id=1, start=2, p=2, q=2)]
        p = ResourceProfile.from_reservations(4, res)
        assert p.capacity_at(0) == 4
        assert p.capacity_at(2) == 2
        assert p.capacity_at(3.5) == 2
        assert p.capacity_at(4) == 4

    def test_from_reservations_infeasible(self):
        res = [
            Reservation(id=1, start=0, p=5, q=3),
            Reservation(id=2, start=2, p=2, q=2),
        ]
        with pytest.raises(CapacityError):
            ResourceProfile.from_reservations(4, res)

    def test_from_segments(self):
        p = ResourceProfile.from_segments([(0, 4), (2, 1), (5, 4)])
        assert p.capacity_at(3) == 1

    def test_copy_independent(self):
        p = ResourceProfile.constant(4)
        q = p.copy()
        q.reserve(0, 1, 2)
        assert p.capacity_at(0) == 4
        assert q.capacity_at(0) == 2


class TestQueries:
    def test_min_capacity(self):
        p = ResourceProfile.from_segments([(0, 4), (2, 1), (5, 4)])
        assert p.min_capacity(0, 2) == 4
        assert p.min_capacity(0, 3) == 1
        assert p.min_capacity(5, 100) == 4

    def test_min_capacity_empty_window_rejected(self):
        p = ResourceProfile.constant(4)
        with pytest.raises(InvalidInstanceError):
            p.min_capacity(3, 3)

    def test_area(self):
        p = ResourceProfile.from_segments([(0, 4), (2, 1), (5, 4)])
        assert p.area(0, 2) == 8
        assert p.area(0, 5) == 8 + 3
        assert p.area(1, 6) == 4 + 3 + 4
        assert p.area(3, 3) == 0

    def test_negative_time_rejected(self):
        with pytest.raises(InvalidInstanceError):
            ResourceProfile.constant(1).capacity_at(-1)

    def test_next_breakpoint(self):
        p = ResourceProfile.from_segments([(0, 4), (2, 1)])
        assert p.next_breakpoint_after(0) == 2
        assert p.next_breakpoint_after(2) is None

    def test_final_capacity(self):
        p = ResourceProfile.from_segments([(0, 4), (2, 1), (5, 3)])
        assert p.final_capacity() == 3

    def test_segments_with_horizon(self):
        p = ResourceProfile.from_segments([(0, 4), (2, 1)])
        segs = list(p.segments(horizon=3))
        assert segs == [(0, 2, 4), (2, 3, 1)]

    def test_fits(self):
        p = ResourceProfile.from_segments([(0, 4), (2, 2), (4, 4)])
        assert p.fits(2, 0, 3)       # min over [0,3) is 2
        assert not p.fits(3, 0, 3)
        assert p.fits(4, 4, 100)


class TestEarliestFit:
    def test_immediate(self):
        p = ResourceProfile.constant(4)
        assert p.earliest_fit(4, 10) == 0

    def test_waits_for_reservation_end(self):
        p = ResourceProfile.from_segments([(0, 4), (2, 1), (5, 4)])
        # q=2 for 4 units: cannot straddle the dip, so waits until 5
        assert p.earliest_fit(2, 4) == 5

    def test_fits_exactly_before_dip(self):
        p = ResourceProfile.from_segments([(0, 4), (2, 1), (5, 4)])
        assert p.earliest_fit(2, 2) == 0

    def test_respects_after(self):
        p = ResourceProfile.constant(4)
        assert p.earliest_fit(1, 1, after=7) == 7

    def test_after_inside_low_segment(self):
        p = ResourceProfile.from_segments([(0, 4), (2, 1), (5, 4)])
        assert p.earliest_fit(2, 1, after=3) == 5

    def test_none_when_final_capacity_too_small(self):
        p = ResourceProfile.from_segments([(0, 4), (2, 1)])
        assert p.earliest_fit(2, 1, after=2) is None

    def test_zero_width_always_fits(self):
        p = ResourceProfile.from_segments([(0, 0), (5, 1)])
        assert p.earliest_fit(0, 3) == 0

    def test_rejects_bad_duration(self):
        with pytest.raises(InvalidInstanceError):
            ResourceProfile.constant(1).earliest_fit(1, 0)


class TestMutation:
    def test_reserve_and_add_roundtrip(self):
        p = ResourceProfile.constant(4)
        q = p.copy()
        q.reserve(2, 3, 2)
        q.add(2, 3, 2)
        assert q == p

    def test_reserve_overflow_rejected_and_state_unchanged(self):
        p = ResourceProfile.constant(2)
        p.reserve(0, 5, 1)
        snapshot = p.copy()
        with pytest.raises(CapacityError):
            p.reserve(3, 4, 2)
        assert p == snapshot

    def test_reserve_zero_amount_noop(self):
        p = ResourceProfile.constant(2)
        p.reserve(0, 1, 0)
        assert p == ResourceProfile.constant(2)

    def test_reserve_negative_amount_rejected(self):
        with pytest.raises(InvalidInstanceError):
            ResourceProfile.constant(2).reserve(0, 1, -1)

    def test_reserve_before_zero_rejected(self):
        with pytest.raises(InvalidInstanceError):
            ResourceProfile.constant(2).reserve(-1, 1, 1)

    def test_nested_reservations(self):
        p = ResourceProfile.constant(10)
        p.reserve(0, 10, 3)
        p.reserve(2, 4, 3)
        p.reserve(3, 1, 4)
        assert p.capacity_at(0) == 7
        assert p.capacity_at(2) == 4
        assert p.capacity_at(3) == 0
        assert p.capacity_at(4) == 4
        assert p.capacity_at(6) == 7
        assert p.capacity_at(10) == 10


class TestDerived:
    def test_first_time_area_reaches(self):
        p = ResourceProfile.from_segments([(0, 4), (2, 2), (4, 4)])
        # area: 8 by t=2, 12 by t=4, then 4/unit
        assert p.first_time_area_reaches(8) == 2
        assert p.first_time_area_reaches(12) == 4
        assert p.first_time_area_reaches(20) == 6
        assert p.first_time_area_reaches(0) == 0

    def test_first_time_area_with_start(self):
        p = ResourceProfile.constant(2)
        assert p.first_time_area_reaches(4, start=3) == 5

    def test_inverted(self):
        p = ResourceProfile.from_segments([(0, 4), (2, 1), (5, 4)])
        u = p.inverted(4)
        assert u.capacity_at(0) == 0
        assert u.capacity_at(3) == 3

    def test_inverted_rejects_overflow(self):
        with pytest.raises(InvalidInstanceError):
            ResourceProfile.constant(5).inverted(4)

    def test_is_nondecreasing(self):
        assert ResourceProfile.from_segments([(0, 1), (2, 3)]).is_nondecreasing()
        assert not ResourceProfile.from_segments(
            [(0, 3), (2, 1)]
        ).is_nondecreasing()

    def test_truncated_after(self):
        p = ResourceProfile.from_segments([(0, 1), (2, 3), (5, 6)])
        t = p.truncated_after(3)
        assert t.capacity_at(1) == 1
        assert t.capacity_at(2.5) == 3
        assert t.capacity_at(100) == 3

    def test_truncated_at_zero(self):
        p = ResourceProfile.from_segments([(0, 1), (2, 3)])
        t = p.truncated_after(0)
        assert t == ResourceProfile.constant(1)

    def test_equality_and_hash(self):
        a = ResourceProfile.from_segments([(0, 2), (1, 3)])
        b = ResourceProfile.from_segments([(0, 2), (1, 3)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != ResourceProfile.constant(2)


# ---------------------------------------------------------------------------
# property tests against the naive reference
# ---------------------------------------------------------------------------

reservation_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=20),   # start
        st.integers(min_value=1, max_value=10),   # duration
        st.integers(min_value=1, max_value=3),    # amount
    ),
    max_size=6,
)


@settings(max_examples=120, deadline=None)
@given(m=st.integers(min_value=3, max_value=12), holds=reservation_lists)
def test_profile_matches_naive_capacity(m, holds):
    """reserve/capacity_at/min_capacity agree with the quadratic reference."""
    profile = ResourceProfile.constant(m)
    naive = NaiveCapacity(m)
    for start, dur, amount in holds:
        if profile.min_capacity(start, start + dur) >= amount:
            profile.reserve(start, dur, amount)
            naive.reserve(start, dur, amount)
    for t in range(0, 35):
        assert profile.capacity_at(t) == naive.capacity_at(t), f"t={t}"
    for a in range(0, 30, 3):
        for b in (a + 1, a + 5):
            assert profile.min_capacity(a, b) == naive.min_capacity(a, b)


@settings(max_examples=120, deadline=None)
@given(
    m=st.integers(min_value=2, max_value=10),
    holds=reservation_lists,
    q=st.integers(min_value=1, max_value=2),
    duration=st.integers(min_value=1, max_value=8),
    after=st.integers(min_value=0, max_value=15),
)
def test_earliest_fit_matches_naive(m, holds, q, duration, after):
    profile = ResourceProfile.constant(m)
    naive = NaiveCapacity(m)
    for start, dur, amount in holds:
        if profile.min_capacity(start, start + dur) >= amount:
            profile.reserve(start, dur, amount)
            naive.reserve(start, dur, amount)
    got = profile.earliest_fit(q, duration, after=after)
    want = naive.earliest_fit(q, duration, after=after)
    assert got == want


@settings(max_examples=80, deadline=None)
@given(
    m=st.integers(min_value=2, max_value=10),
    holds=reservation_lists,
    q=st.integers(min_value=1, max_value=3),
    duration=st.integers(min_value=1, max_value=8),
)
def test_earliest_fit_is_feasible_and_minimal(m, holds, q, duration):
    """The returned start fits, and no earlier integer-or-boundary start does."""
    profile = ResourceProfile.constant(m)
    for start, dur, amount in holds:
        if profile.min_capacity(start, start + dur) >= amount:
            profile.reserve(start, dur, amount)
    s = profile.earliest_fit(q, duration)
    if s is None:
        assert profile.final_capacity() < q
        return
    assert profile.min_capacity(s, s + duration) >= q
    # no breakpoint strictly before s admits the block
    for t in profile.breakpoints:
        if t < s:
            assert profile.min_capacity(t, t + duration) < q


@settings(max_examples=60, deadline=None)
@given(m=st.integers(min_value=1, max_value=8), holds=reservation_lists)
def test_area_additivity(m, holds):
    """area(0, b) == area(0, a) + area(a, b)."""
    profile = ResourceProfile.constant(m)
    for start, dur, amount in holds:
        if profile.min_capacity(start, start + dur) >= amount:
            profile.reserve(start, dur, amount)
    for a, b in [(0, 5), (3, 11), (7, 30)]:
        assert profile.area(0, b) == profile.area(0, a) + profile.area(a, b)


def test_fraction_times_supported():
    p = ResourceProfile.constant(3)
    p.reserve(Fraction(1, 3), Fraction(1, 6), 2)
    assert p.capacity_at(Fraction(1, 3)) == 1
    assert p.capacity_at(Fraction(1, 2)) == 3
    # a 3-wide block longer than 1/3 cannot end before the dip starts
    assert p.earliest_fit(3, Fraction(1, 2)) == Fraction(1, 2)
