"""Tests for the order local-search scheduler."""

import pytest

from repro.algorithms import (
    ListScheduler,
    LocalSearchScheduler,
    branch_and_bound,
    local_search_schedule,
)
from repro.errors import InvalidInstanceError
from repro.theory import graham_ratio, proposition2_instance
from repro.workloads import uniform_instance

from conftest import random_resa


class TestLocalSearch:
    def test_never_worse_than_seed_rule(self):
        for seed in range(8):
            inst = random_resa(seed, n=8)
            seeded = ListScheduler("lpt").schedule(inst)
            improved = local_search_schedule(inst, budget=150, seed=seed)
            improved.verify()
            assert improved.makespan <= seeded.makespan

    def test_stats_recorded(self):
        inst = uniform_instance(8, 4, seed=1)
        scheduler = LocalSearchScheduler(budget=100)
        schedule = scheduler.schedule(inst)
        stats = scheduler.last_stats
        assert stats is not None
        assert stats.evaluations <= 100
        assert stats.final_makespan == schedule.makespan
        assert stats.final_makespan <= stats.start_makespan

    def test_recovers_optimum_on_adversarial_family(self):
        """Local search escapes the Proposition 2 trap: starting from the
        *bad* order, reordering finds the optimal k-makespan schedule."""
        fam = proposition2_instance(3)  # small enough to search
        scheduler = LocalSearchScheduler(
            start_rule="fifo", budget=400, seed=0
        )
        schedule = scheduler.schedule(fam.instance)
        schedule.verify()
        assert schedule.makespan == fam.optimal_makespan

    def test_still_a_list_schedule(self):
        """The result obeys list-scheduling guarantees (it IS an LSRC run)."""
        for seed in range(5):
            inst = uniform_instance(5, 4, p_range=(1, 5), seed=seed)
            schedule = local_search_schedule(inst, budget=120, seed=seed)
            cstar = branch_and_bound(inst).makespan
            assert schedule.makespan <= graham_ratio(4) * cstar + 1e-9

    def test_neighbourhood_options(self):
        inst = uniform_instance(6, 4, seed=2)
        for hood in ("swap", "reinsert", "both"):
            s = LocalSearchScheduler(
                neighbourhood=hood, budget=60
            ).schedule(inst)
            s.verify()

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            LocalSearchScheduler(budget=0)
        with pytest.raises(InvalidInstanceError):
            LocalSearchScheduler(neighbourhood="teleport")

    def test_deterministic(self):
        inst = uniform_instance(8, 4, seed=3)
        a = LocalSearchScheduler(budget=100, seed=5).schedule(inst)
        b = LocalSearchScheduler(budget=100, seed=5).schedule(inst)
        assert a.starts == b.starts

    def test_registered(self):
        from repro.algorithms import available_schedulers

        assert "lsrc-ls" in available_schedulers()
