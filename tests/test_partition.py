"""Tests for PARTITION / 3-PARTITION solvers and generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstanceError
from repro.theory import (
    is_3partition_yes,
    random_no_3partition,
    random_yes_3partition,
    solve_3partition,
    solve_partition,
)


class TestPartition:
    def test_simple_yes(self):
        result = solve_partition([1, 2, 3])
        assert result is not None
        left, right = result
        assert sum(left) == sum(right) == 3

    def test_simple_no_odd_sum(self):
        assert solve_partition([1, 2, 4]) is None

    def test_no_even_sum(self):
        assert solve_partition([2, 2, 4, 10]) is None

    def test_bigger_yes(self):
        vals = [7, 3, 5, 1, 8, 2, 6, 4]  # sum 36
        result = solve_partition(vals)
        assert result is not None
        left, right = result
        assert sum(left) == 18
        assert sorted(left + right) == sorted(vals)

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidInstanceError):
            solve_partition([1, 0, 2])
        with pytest.raises(InvalidInstanceError):
            solve_partition([1, -3])

    def test_single_element_no(self):
        assert solve_partition([2]) is None


class TestThreePartition:
    def test_known_yes(self):
        # 2 triples summing to 12
        vals = [4, 4, 4, 5, 4, 3]
        groups = solve_3partition(vals, 12)
        assert groups is not None
        assert len(groups) == 2
        for g in groups:
            assert sum(g) == 12
        # every value used exactly once
        used = sorted(v for g in groups for v in g)
        assert used == sorted(vals)

    def test_known_no(self):
        # sum matches (24 = 2*12) but 11 would need two partners summing
        # to 1, impossible with positive integers
        vals = [11, 2, 1, 5, 4, 1]
        assert solve_3partition(vals, 12) is None

    def test_wrong_sum_is_no(self):
        assert solve_3partition([4, 4, 4, 4, 4, 4], 13) is None

    def test_not_multiple_of_three(self):
        with pytest.raises(InvalidInstanceError):
            solve_3partition([1, 2], 3)

    def test_empty(self):
        assert solve_3partition([], 5) == []

    def test_is_yes_wrapper(self):
        assert is_3partition_yes([4, 4, 4, 5, 4, 3], 12)
        assert not is_3partition_yes([11, 2, 1, 5, 4, 1], 12)


class TestGenerators:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_yes_instances_are_yes(self, k):
        vals, bound = random_yes_3partition(k, 100, seed=k)
        assert len(vals) == 3 * k
        assert sum(vals) == k * bound
        # standard restriction: every value in (B/4, B/2)
        for v in vals:
            assert bound / 4 < v < bound / 2
        assert is_3partition_yes(vals, bound)

    @pytest.mark.parametrize("k", [2, 3])
    def test_no_instances_are_no(self, k):
        vals, bound = random_no_3partition(k, 100, seed=k)
        assert sum(vals) == k * bound
        assert not is_3partition_yes(vals, bound)

    def test_bound_too_small_rejected(self):
        with pytest.raises(InvalidInstanceError):
            random_yes_3partition(2, 4)

    def test_k_zero_rejected(self):
        with pytest.raises(InvalidInstanceError):
            random_yes_3partition(0, 100)


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_generated_yes_instances_always_solvable(k, seed):
    vals, bound = random_yes_3partition(k, 60, seed=seed)
    groups = solve_3partition(vals, bound)
    assert groups is not None
    for g in groups:
        assert sum(g) == bound
