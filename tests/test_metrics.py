"""Tests for schedule metrics."""


from repro.algorithms import list_schedule
from repro.core import (
    ReservationInstance,
    RigidInstance,
    Schedule,
    summarize,
    utilization,
)
from repro.core.metrics import available_area, slowdowns, waiting_times


class TestWaitingAndSlowdown:
    def test_no_wait(self):
        inst = RigidInstance.from_specs(2, [(2, 1)])
        s = Schedule(inst, {0: 0})
        assert waiting_times(s) == [0]
        assert slowdowns(s) == [1.0]

    def test_wait_measured_from_release(self):
        inst = RigidInstance.from_specs(2, [(2, 1, 3)])
        s = Schedule(inst, {0: 5})
        assert waiting_times(s) == [2]
        assert slowdowns(s) == [(2 + 2) / 2]

    def test_multiple_jobs(self):
        inst = RigidInstance.from_specs(1, [(2, 1), (4, 1)])
        s = Schedule(inst, {0: 0, 1: 2})
        assert waiting_times(s) == [0, 2]
        assert slowdowns(s) == [1.0, 1.5]


class TestUtilization:
    def test_full_machine(self):
        inst = RigidInstance.from_specs(2, [(3, 2)])
        s = Schedule(inst, {0: 0})
        assert utilization(s) == 1.0

    def test_half_machine(self):
        inst = RigidInstance.from_specs(2, [(3, 1)])
        s = Schedule(inst, {0: 0})
        assert utilization(s) == 0.5

    def test_available_utilization_discounts_reservations(self):
        inst = ReservationInstance.from_specs(2, [(4, 1)], [(0, 4, 1)])
        s = Schedule(inst, {0: 0})
        m = summarize(s)
        assert m.utilization == 0.5          # half the raw machine
        assert m.available_utilization == 1.0  # all of what was available
        assert m.idle_area == 0

    def test_available_area(self):
        inst = ReservationInstance.from_specs(2, [(4, 1)], [(0, 2, 1)])
        s = Schedule(inst, {0: 0})
        assert available_area(s) == 2 * 4 - 2


class TestSummary:
    def test_summarize_fields(self, tiny_resa):
        s = list_schedule(tiny_resa)
        m = summarize(s)
        assert m.makespan == s.makespan
        assert m.n_jobs == 4
        assert m.total_work == tiny_resa.total_work
        assert 0 < m.utilization <= 1
        assert m.mean_wait <= m.max_wait
        assert 1 <= m.mean_slowdown <= m.max_slowdown
        assert m.idle_area >= 0

    def test_as_dict_roundtrip(self, tiny_resa):
        m = summarize(list_schedule(tiny_resa))
        d = m.as_dict()
        assert d["makespan"] == m.makespan
        assert set(d) >= {"makespan", "utilization", "mean_wait", "n_jobs"}

    def test_empty_schedule(self):
        inst = RigidInstance(m=2, jobs=())
        m = summarize(Schedule(inst, {}))
        assert m.makespan == 0
        assert m.utilization == 0.0
        assert m.n_jobs == 0
