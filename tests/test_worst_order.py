"""Tests for the empirical worst-order analysis."""


import pytest

from repro.core import RigidInstance
from repro.errors import InvalidInstanceError
from repro.theory import (
    graham_ratio,
    worst_order_exhaustive,
    worst_order_sample,
)
from repro.workloads import uniform_instance

from conftest import random_resa


class TestExhaustive:
    def test_single_job_trivial(self):
        inst = RigidInstance.from_specs(2, [(3, 1)])
        result = worst_order_exhaustive(inst)
        assert result.worst_makespan == result.best_makespan == 3
        assert result.optimal_makespan == 3
        assert result.orders_explored == 1
        assert result.exhaustive

    def test_order_sensitive_instance(self):
        """The Graham-style trap in miniature: unit jobs + one long job."""
        inst = RigidInstance.from_specs(
            2, [(1, 1), (1, 1), (2, 1)]
        )
        result = worst_order_exhaustive(inst)
        # best: long job first -> 2; worst: units first -> 3
        assert result.best_makespan == 2
        assert result.worst_makespan == 3
        assert result.optimal_makespan == 2
        assert result.order_spread == 1.5

    def test_worst_ratio_within_graham(self):
        """max over orders still obeys Theorem 2 (it is a list schedule)."""
        for seed in range(6):
            inst = uniform_instance(5, 4, p_range=(1, 5), seed=seed)
            result = worst_order_exhaustive(inst)
            assert result.worst_ratio <= float(graham_ratio(4)) + 1e-9
            assert result.best_ratio >= 1.0 - 1e-9

    def test_with_reservations(self):
        inst = random_resa(5, n=5)
        result = worst_order_exhaustive(inst)
        assert result.worst_makespan >= result.best_makespan
        assert result.best_makespan >= result.optimal_makespan - 1e-9

    def test_too_many_jobs(self):
        inst = uniform_instance(9, 4, seed=1)
        with pytest.raises(InvalidInstanceError):
            worst_order_exhaustive(inst)

    def test_empty_rejected(self):
        with pytest.raises(InvalidInstanceError):
            worst_order_exhaustive(RigidInstance(m=2, jobs=()))


class TestSampled:
    def test_sample_bounds_exhaustive(self):
        """Sampled worst <= true worst; sampled best >= true best can
        fail... no: sampling explores a subset, so sampled worst <= true
        worst and sampled best >= true best."""
        inst = uniform_instance(5, 4, p_range=(1, 5), seed=3)
        exact = worst_order_exhaustive(inst)
        sampled = worst_order_sample(inst, samples=80, seed=0)
        assert sampled.worst_makespan <= exact.worst_makespan
        assert sampled.best_makespan >= exact.best_makespan
        assert not sampled.exhaustive

    def test_sample_includes_rule_orders(self):
        inst = uniform_instance(10, 8, seed=4)
        result = worst_order_sample(
            inst, samples=20, seed=1, compute_optimal=False
        )
        # 7 rules x 2 directions + 20 random
        assert result.orders_explored == 34
        assert result.optimal_makespan is None
        with pytest.raises(InvalidInstanceError):
            result.worst_ratio

    def test_sample_deterministic(self):
        inst = uniform_instance(8, 4, seed=5)
        a = worst_order_sample(inst, samples=30, seed=2)
        b = worst_order_sample(inst, samples=30, seed=2)
        assert a.worst_makespan == b.worst_makespan
        assert a.worst_order == b.worst_order
