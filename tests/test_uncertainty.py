"""Runtime-uncertainty layer: models, engine mechanics, determinism.

The contracts under test are the PR's acceptance bar:

* the ``exact`` model is *byte-identical* to no model at all, across
  policies x profile backends x batched/scalar engines — window rows,
  totals and recorded starts;
* every stochastic model is seed-deterministic: same seed => identical
  output, different seed => different draws, and a serial replay equals
  its epoch-sharded twin (checkpoints round-trip the uncertainty state);
* the event mechanics hold individually: failure/requeue with bounded
  retries, walltime kills, grace extensions, early-exit capacity
  credit, reservation no-shows, and the ``unstaged`` cancel gauge.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.core.job import Job
from repro.core.metrics import p_slowdown_le, quantile
from repro.devtools import failpoints
from repro.devtools.failpoints import CATALOG_BY_NAME, FailpointError
from repro.errors import InvalidInstanceError, ReproError, SchedulingError
from repro.simulation.online_sim import simulate
from repro.simulation.replay import (
    UNCERTAINTY_METRIC_FIELDS,
    ReplayEngine,
    replay_epochs,
)
from repro.simulation.scheduler_core import SchedulerCore
from repro.workloads.uncertainty import (
    UNCERTAINTY_MODELS,
    UncertaintyModel,
    available_uncertainty_models,
    parse_uncertainty,
    resolve_uncertainty,
)

#: wall-clock fields that legitimately differ between identical runs
VOLATILE = {"elapsed_seconds"}


def _trim(result):
    totals = {k: v for k, v in result.totals.items() if k not in VOLATILE}
    return totals, result.windows, result.starts


def _jobs_from_rows(rows, m):
    jobs = []
    t = 0
    for i, (gap, p, q) in enumerate(rows):
        t += gap
        jobs.append(Job.trusted(i, p, min(q, m), t))
    return jobs


_trace_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),    # submit gap
        st.integers(min_value=1, max_value=40),   # runtime estimate
        st.integers(min_value=1, max_value=16),   # processors
    ),
    min_size=1,
    max_size=50,
)

_policies = st.sampled_from(["fcfs", "greedy", "easy"])

_models = st.sampled_from([
    "lognormal:sigma=0.5",
    "lognormal:sigma=1:overrun=grace",
    "overestimate:factor=4",
    "underestimate:factor=2:overrun=grace:grace=0.5",
    "early-exit:failure_rate=0.2",
])


@pytest.fixture(autouse=True)
def _reset_failpoints():
    failpoints.reset()
    yield
    failpoints.reset()


# ---------------------------------------------------------------------------
# model + spec grammar
# ---------------------------------------------------------------------------

class TestModelSpec:
    def test_builtin_models_registered(self):
        assert available_uncertainty_models() == [
            "early-exit", "exact", "lognormal", "overestimate",
            "underestimate",
        ]

    def test_defaults(self):
        m = parse_uncertainty("lognormal")
        assert m.sigma == 0.5
        assert m.failure_rate == 0.02    # stochastic models fail by default
        assert m.max_retries == 3 and m.backoff == 60
        assert parse_uncertainty("exact").failure_rate == 0.0

    def test_canonical_spec_round_trips(self):
        for spec in ("exact", "lognormal:sigma=0.9:overrun=grace:seed=7",
                     "underestimate:factor=3:failure_rate=0.5",
                     "early-exit:no_show_rate=0.1"):
            model = parse_uncertainty(spec)
            assert parse_uncertainty(model.spec) == model

    def test_default_seed_fills_only_when_absent(self):
        assert parse_uncertainty("lognormal", default_seed=9).seed == 9
        assert parse_uncertainty("lognormal:seed=3", default_seed=9).seed == 3

    def test_unknown_model_and_params_are_loud(self):
        with pytest.raises(InvalidInstanceError, match="unknown"):
            parse_uncertainty("weibull")
        with pytest.raises(InvalidInstanceError, match="unknown parameter"):
            parse_uncertainty("lognormal:factor=2")   # factor is not lognormal's
        with pytest.raises(InvalidInstanceError, match="malformed"):
            parse_uncertainty("lognormal:sigma")
        with pytest.raises(InvalidInstanceError, match="not a.*number"):
            parse_uncertainty("lognormal:sigma=big")

    def test_validation_is_loud(self):
        with pytest.raises(InvalidInstanceError, match="factor"):
            UncertaintyModel(model="overestimate", factor=0.5)
        with pytest.raises(InvalidInstanceError, match="failure_rate"):
            UncertaintyModel(failure_rate=1.5)
        with pytest.raises(InvalidInstanceError, match="overrun"):
            UncertaintyModel(overrun="forgive")
        with pytest.raises(InvalidInstanceError, match="backoff"):
            UncertaintyModel(backoff=0)

    def test_is_exact(self):
        assert parse_uncertainty("exact").is_exact
        assert not parse_uncertainty("exact:failure_rate=0.1").is_exact
        assert not parse_uncertainty("exact:no_show_rate=0.1").is_exact
        assert not parse_uncertainty("lognormal").is_exact

    def test_resolve(self):
        assert resolve_uncertainty(None) is None
        model = parse_uncertainty("lognormal")
        assert resolve_uncertainty(model) is model
        assert resolve_uncertainty("lognormal") == model
        with pytest.raises(InvalidInstanceError, match="uncertainty must be"):
            resolve_uncertainty(42)

    def test_third_party_model_joins_registry(self):
        name = "test-always-half"
        UNCERTAINTY_MODELS.register(
            name,  # repro: noqa RPL501 -- test-scoped throwaway name
            lambda **kw: UncertaintyModel(model="early-exit", **kw),
            overwrite=True,
        )
        assert parse_uncertainty(f"{name}:seed=1").model == "early-exit"

    def test_draw_is_deterministic_and_gridded(self):
        model = parse_uncertainty("lognormal:sigma=1:failure_rate=0.5:seed=4")
        for attempt in range(3):
            a1 = model.draw("job-1", 100, attempt)
            a2 = model.draw("job-1", 100, attempt)
            assert a1 == a2
            actual, fail_at = a1
            assert isinstance(actual, int) and actual >= 1
            if fail_at is not None:
                assert 1 <= fail_at <= min(actual, 100)
        assert model.draw("job-1", 100, 0) != model.draw("job-2", 100, 0)

    def test_attempt_past_retry_budget_never_fails(self):
        model = parse_uncertainty("lognormal:failure_rate=1:max_retries=2")
        for job in range(50):
            assert model.draw(job, 30, attempt=2)[1] is None
            assert model.draw(job, 30, attempt=1)[1] is not None

    def test_no_show_draw(self):
        assert not parse_uncertainty("lognormal").is_no_show(0)
        sure = parse_uncertainty("exact:no_show_rate=1")
        assert sure.is_no_show(0) and sure.is_no_show(5)

    def test_metric_helpers(self):
        assert quantile([3, 1, 2], 0.5) == 2
        assert quantile([3, 1, 2], 0.99) == 3
        assert quantile([], 0.5) == 0
        assert isinstance(quantile([3, 1, 2], 0.5), int)
        with pytest.raises(InvalidInstanceError):
            quantile([1], 1.5)
        assert p_slowdown_le([1, 5, 50]) == pytest.approx(2 / 3)
        assert p_slowdown_le([]) == 1.0


# ---------------------------------------------------------------------------
# the exact model is byte-identical to no model at all
# ---------------------------------------------------------------------------

class TestExactIdentity:
    @pytest.mark.parametrize("policy", ["fcfs", "greedy", "easy"])
    @pytest.mark.parametrize("backend", ["array", "list"])
    @pytest.mark.parametrize("batch", [False, True])
    def test_identity_matrix(self, policy, backend, batch):
        """policies x backends x batched/scalar: ``exact`` changes no byte."""
        m = 16
        jobs = _jobs_from_rows(
            [(i % 3, 5 + (i * 7) % 23, 1 + (i * 5) % 16) for i in range(80)],
            m,
        )
        kwargs = dict(policy=policy, window=7, profile_backend=backend,
                      batch=batch, record_starts=True)
        plain = ReplayEngine(m, **kwargs).run(jobs)
        exact = ReplayEngine(m, uncertainty="exact", **kwargs).run(jobs)
        assert _trim(exact) == _trim(plain)
        assert not (UNCERTAINTY_METRIC_FIELDS & exact.totals.keys())

    @given(rows=_trace_rows, policy=_policies,
           window=st.sampled_from([0, 7]))
    @settings(max_examples=40, deadline=None)
    def test_exact_identity_differential(self, rows, policy, window):
        m = 16
        jobs = _jobs_from_rows(rows, m)
        plain = ReplayEngine(m, policy=policy, window=window,
                             record_starts=True).run(jobs)
        exact = ReplayEngine(m, policy=policy, window=window,
                             record_starts=True,
                             uncertainty="exact").run(jobs)
        assert _trim(exact) == _trim(plain)

    def test_exact_checkpoint_carries_no_uncertainty(self):
        jobs = _jobs_from_rows([(1, 5, 4)] * 10, 8)
        result = ReplayEngine(8, uncertainty="exact").run_slice(
            jobs, drain=False
        )
        assert result.checkpoint.uncertainty is None

    def test_heap_queue_rejects_models(self):
        with pytest.raises(SchedulingError, match="calendar"):
            ReplayEngine(8, completion_queue="heap",
                         uncertainty="lognormal")
        ReplayEngine(8, completion_queue="heap", uncertainty="exact")


# ---------------------------------------------------------------------------
# seeded determinism + serial == epoch-sharded
# ---------------------------------------------------------------------------

class TestSeededDeterminism:
    def test_same_seed_identical_different_seed_not(self):
        m = 32
        jobs = _jobs_from_rows(
            [(i % 2, 10 + (i * 11) % 31, 1 + (i * 3) % 20) for i in range(200)],
            m,
        )
        spec = "lognormal:sigma=0.8:overrun=grace:seed=5"
        runs = [
            ReplayEngine(m, policy="easy", window=25, record_starts=True,
                         uncertainty=spec).run(jobs)
            for _ in range(2)
        ]
        assert _trim(runs[0]) == _trim(runs[1])
        other = ReplayEngine(
            m, policy="easy", window=25, record_starts=True,
            uncertainty="lognormal:sigma=0.8:overrun=grace:seed=6",
        ).run(jobs)
        assert _trim(other) != _trim(runs[0])

    @given(rows=_trace_rows, policy=_policies, model=_models,
           epochs=st.sampled_from([2, 3]))
    @settings(max_examples=25, deadline=None)
    def test_sharded_equals_serial(self, rows, policy, model, epochs):
        """The checkpoint round-trips the full uncertainty state: an
        epoch-sharded stochastic replay is byte-identical to serial."""
        m = 16
        jobs = _jobs_from_rows(rows, m)
        serial = ReplayEngine(m, policy=policy, window=7, record_starts=True,
                              uncertainty=model).run(jobs)
        sharded = replay_epochs(
            jobs, policy=policy, epochs=epochs, m=m, use_processes=False,
            window=7, record_starts=True, uncertainty=model,
        )
        assert _trim(sharded) == _trim(serial)

    def test_sharded_process_workers_identical(self):
        m = 32
        jobs = _jobs_from_rows(
            [(1, 8 + (i * 13) % 40, 1 + (i * 7) % 24) for i in range(300)],
            m,
        )
        model = "underestimate:factor=2:overrun=grace:seed=11"
        serial = ReplayEngine(m, policy="easy", window=50,
                              uncertainty=model).run(jobs)
        sharded = replay_epochs(
            jobs, policy="easy", epochs=3, m=m, use_processes=True,
            window=50, uncertainty=model,
        )
        assert _trim(sharded)[:2] == _trim(serial)[:2]

    def test_resume_under_different_model_is_loud(self):
        jobs = _jobs_from_rows([(1, 10, 4)] * 30, 8)
        ckpt = ReplayEngine(
            8, uncertainty="lognormal:seed=1"
        ).run_slice(jobs, drain=False).checkpoint
        with pytest.raises(SchedulingError, match="uncertainty model"):
            SchedulerCore(8, "easy", resume=ckpt,
                          uncertainty="lognormal:seed=2")
        with pytest.raises(SchedulingError, match="uncertainty model"):
            SchedulerCore(8, "easy", resume=ckpt)


# ---------------------------------------------------------------------------
# event mechanics, one at a time
# ---------------------------------------------------------------------------

class TestMechanics:
    def test_failure_requeues_with_backoff_then_completes(self):
        model = parse_uncertainty(
            "exact:failure_rate=1:max_retries=2:backoff=10"
        )
        core = SchedulerCore(4, "easy", uncertainty=model)
        core.submit(Job.trusted("j", 20, 4, 0))
        core.advance_to(10_000)
        st_ = core.status()
        assert st_["completed"] == 1
        assert st_["requeues"] == 2    # every attempt fails until the budget
        assert st_["kills"] == 0
        # failure instants and backoffs push completion past 3 runs' worth
        fail1 = model.draw("j", 20, 0)[1]
        fail2 = model.draw("j", 20, 1)[1]
        expected = (fail1 + 10) + (fail2 + 10) + 20
        assert core.state.profile.earliest_fit(4, 1, after=0) is not None
        assert st_["clock"] == expected

    def test_overrun_kill_at_estimate(self):
        core = SchedulerCore(
            4, "easy",
            uncertainty="underestimate:factor=3:failure_rate=0:seed=2",
        )
        core.submit(Job.trusted("j", 50, 4, 0))
        core.advance_to(10_000)
        st_ = core.status()
        assert st_["completed"] == 1 and st_["kills"] == 1
        assert st_["clock"] == 50    # killed exactly at the estimate

    def test_overrun_grace_extends_when_capacity_allows(self):
        model = parse_uncertainty(
            "underestimate:factor=1.4:failure_rate=0:overrun=grace"
            ":grace=0.5:seed=4"
        )
        actual, _ = model.draw("j", 100, 0)
        assert actual > 100    # the point of the scenario
        core = SchedulerCore(4, "easy", uncertainty=model)
        core.submit(Job.trusted("j", 100, 4, 0))
        core.advance_to(10_000)
        st_ = core.status()
        cap = 100 + model.grace_budget(100)
        assert st_["clock"] == min(actual, cap)
        assert st_["kills"] == (1 if actual > cap else 0)

    def test_early_exit_frees_capacity_for_queued_job(self):
        model = parse_uncertainty("early-exit:failure_rate=0:seed=3")
        actual, _ = model.draw("a", 100, 0)
        assert actual < 100
        core = SchedulerCore(1, "easy", uncertainty=model, record_starts=True)
        core.submit(Job.trusted("a", 100, 1, 0))
        core.submit(Job.trusted("b", 100, 1, 0))
        core.advance_to(10_000)
        assert core.status()["early_exits"] >= 1
        # b starts at a's *actual* completion, not its estimate
        assert core.starts["b"] == actual

    def test_reservation_no_show_releases_hole(self):
        core = SchedulerCore(
            4, "easy", uncertainty="exact:no_show_rate=1",
            record_starts=True,
        )
        core.reserve(10, 50, 4)
        core.submit(Job.trusted("j", 20, 4, 0))
        core.advance_to(10_000)
        st_ = core.status()
        assert st_["no_shows"] == 1
        # the hole opened at its start instant: the job begins right
        # there instead of waiting out the 50-unit reservation
        assert core.starts["j"] == 10
        assert core.last_completion == 30

    def test_no_show_state_survives_checkpoint(self):
        spec = "exact:no_show_rate=1"
        core = SchedulerCore(4, "easy", uncertainty=spec)
        core.reserve(500, 50, 4)   # future: no-show still pending
        core.submit(Job.trusted("j", 20, 4, 0))
        core.advance_to(100)
        ckpt = core.checkpoint()
        assert ckpt.uncertainty is not None
        assert ckpt.uncertainty["no_shows_at"]
        resumed = SchedulerCore(4, "easy", resume=ckpt, uncertainty=spec)
        core.advance_to(10_000)
        resumed.advance_to(10_000)
        assert resumed.status() == core.status()
        assert resumed.status()["no_shows"] == 1

    def test_unstaged_cancel_gauge(self):
        core = SchedulerCore(4, "easy")
        core.submit(Job.trusted("future", 10, 2, 1_000))
        assert core.cancel("future") == "staged"
        st_ = core.status()
        assert st_["unstaged"] == 1 and st_["cancelled"] == 0
        assert core.describe_state()["unstaged"] == 1
        assert core.extra_state()["unstaged"] == 1
        fresh = SchedulerCore(4, "easy")
        fresh.restore_extra_state(core.extra_state())
        assert fresh.unstaged == 1

    def test_requeue_failpoint_fires(self):
        failpoints.arm("uncertainty.requeue", "error")
        core = SchedulerCore(
            4, "easy", uncertainty="exact:failure_rate=1:max_retries=1",
        )
        core.submit(Job.trusted("j", 20, 4, 0))
        with pytest.raises(FailpointError):
            core.advance_to(10_000)

    def test_overrun_kill_failpoint_fires(self):
        failpoints.arm("uncertainty.overrun_kill", "error")
        core = SchedulerCore(
            4, "easy",
            uncertainty="underestimate:factor=3:failure_rate=0:seed=2",
        )
        core.submit(Job.trusted("j", 50, 4, 0))
        with pytest.raises(FailpointError):
            core.advance_to(10_000)

    def test_failpoints_catalogued(self):
        assert "uncertainty.requeue" in CATALOG_BY_NAME
        assert "uncertainty.overrun_kill" in CATALOG_BY_NAME


# ---------------------------------------------------------------------------
# windowed distributional metrics
# ---------------------------------------------------------------------------

class TestWindowRows:
    DIST_KEYS = {
        "p_slowdown_le", "wait_p50", "wait_p95", "wait_p99",
        "bsld_p50", "bsld_p95", "bsld_p99", "requeues", "kills",
        "no_shows",
    }

    def test_stochastic_rows_carry_distributional_columns(self):
        m = 16
        jobs = _jobs_from_rows(
            [(1, 10 + i % 20, 1 + i % 12) for i in range(120)], m
        )
        result = ReplayEngine(
            m, policy="easy", window=30, uncertainty="lognormal:sigma=0.7",
        ).run(jobs)
        assert result.windows
        for row in result.windows:
            assert self.DIST_KEYS <= row.keys()
            assert 0.0 <= row["p_slowdown_le"] <= 1.0
            assert row["wait_p50"] <= row["wait_p95"] <= row["wait_p99"]
        totals = result.totals
        assert totals["uncertainty"].startswith("lognormal:")
        assert totals["kills"] + totals["early_exits"] > 0

    def test_certain_rows_do_not(self):
        jobs = _jobs_from_rows([(1, 10, 4)] * 40, 8)
        result = ReplayEngine(8, policy="easy", window=10).run(jobs)
        for row in result.windows:
            assert not (self.DIST_KEYS & row.keys())


# ---------------------------------------------------------------------------
# online simulator: estimate-error models under kill semantics
# ---------------------------------------------------------------------------

class TestOnlineUncertainty:
    def _instance(self):
        from repro.workloads.synthetic import (
            uniform_instance, with_poisson_releases,
        )

        return with_poisson_releases(
            uniform_instance(n=120, m=16, seed=3), rate=0.4, seed=4
        )

    def test_exact_is_identity(self):
        inst = self._instance()
        base = simulate(inst, policy="easy")
        exact = simulate(inst, policy="easy", uncertainty="exact")
        assert exact.schedule.starts == base.schedule.starts
        # jobs are NOT actualized: the degenerate model is a no-op
        assert tuple(j.p for j in exact.schedule.instance.jobs) == \
            tuple(j.p for j in inst.jobs)

    def test_error_model_is_deterministic_and_actualized(self):
        inst = self._instance()
        spec = "overestimate:factor=3:failure_rate=0:seed=7"
        one = simulate(inst, policy="easy", uncertainty=spec)
        two = simulate(inst, policy="easy", uncertainty=spec)
        assert one.schedule.starts == two.schedule.starts
        est = {j.id: j.p for j in inst.jobs}
        assert all(j.p <= est[j.id] for j in one.schedule.instance.jobs)
        assert any(j.p < est[j.id] for j in one.schedule.instance.jobs)

    def test_unsupported_features_are_loud(self):
        inst = self._instance()
        for spec in ("lognormal:sigma=0.5",             # default failures
                     "exact:no_show_rate=0.5",
                     "overestimate:failure_rate=0:overrun=grace"):
            with pytest.raises(SchedulingError, match="replay engine"):
                simulate(inst, uncertainty=spec)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCli:
    def test_replay_uncertainty_flag(self, capsys):
        assert main([
            "replay", "synth:steady:400", "--window", "100",
            "--uncertainty", "lognormal:sigma=0.5",
        ]) == 0
        assert "replayed 400 jobs" in capsys.readouterr().out

    def test_bad_spec_is_reported(self, capsys):
        assert main([
            "replay", "synth:steady:100",
            "--uncertainty", "weibull:k=2",
        ]) == 2
        assert "unknown uncertainty model" in capsys.readouterr().err

    def test_list_uncertainty_models(self, capsys):
        assert main(["list", "--kind", "uncertainty-models"]) == 0
        out = capsys.readouterr().out
        assert "lognormal" in out and "early-exit" in out


# ---------------------------------------------------------------------------
# experiment layer: the uncertainties factor
# ---------------------------------------------------------------------------

class TestExperimentFactor:
    def _spec(self, **overrides):
        from repro.run import ExperimentSpec

        data = {
            "format": "repro-spec/1",
            "name": "u",
            "algorithms": ["online:easy"],
            "traces": [
                {"source": "synth:steady", "params": {"n": 300, "m": 32}}
            ],
            "metrics": ["makespan"],
            "seeds": [0],
        }
        data.update(overrides)
        return ExperimentSpec.from_dict(data)

    def test_uncertainties_multiply_points(self):
        spec = self._spec(uncertainties=["exact", "lognormal:sigma=0.5"])
        assert spec.n_points == 2

    def test_rows_carry_the_factor_and_metrics(self):
        from repro.run import run_experiment

        spec = self._spec(
            uncertainties=["lognormal:sigma=0.5"],
            metrics=["makespan", "p_slowdown_le", "requeues", "kills"],
            seeds=[0, 1],
        )
        rows = run_experiment(spec, jobs=1).rows
        assert len(rows) == 2
        for row in rows:
            assert row["uncertainty"] == "lognormal:sigma=0.5"
            assert 0.0 <= row["p_slowdown_le"] <= 1.0
            assert row["kills"] >= 0 and row["requeues"] >= 0
        # per-point derived seeds: the two seeds draw differently
        assert rows[0]["kills"] != rows[1]["kills"]

    def test_exact_point_with_uncertainty_metric_is_loud(self):
        from repro.run import run_experiment

        spec = self._spec(metrics=["p_slowdown_le"])
        with pytest.raises(InvalidInstanceError, match="uncertainty"):
            run_experiment(spec, jobs=1)

    def test_bad_uncertainty_fails_validation(self):
        with pytest.raises(InvalidInstanceError, match="unknown"):
            self._spec(uncertainties=["weibull"]).validate()

    def test_uncertainties_require_traces(self):
        from repro.run import ExperimentSpec

        with pytest.raises(InvalidInstanceError, match="trace"):
            ExperimentSpec.from_dict({
                "format": "repro-spec/1",
                "name": "u",
                "algorithms": ["online:easy"],
                "workloads": [{"name": "uniform",
                               "params": {"n": 10, "m": 4}}],
                "metrics": ["makespan"],
                "seeds": [0],
                "uncertainties": ["lognormal"],
            })


# ---------------------------------------------------------------------------
# journal fingerprint
# ---------------------------------------------------------------------------

class TestJournalFingerprint:
    def test_resume_under_different_model_is_loud(self, tmp_path):
        from repro.durability import replay_journaled
        from repro.errors import JournalError

        journal = str(tmp_path / "jrnl")
        replay_journaled(
            "synth:steady:200", journal, policy="easy", n=200,
            window=50, uncertainty="lognormal:sigma=0.5",
        )
        with pytest.raises(JournalError, match="uncertainty"):
            replay_journaled(
                "synth:steady:200", journal, policy="easy", n=200,
                window=50, resume=True, uncertainty="lognormal:sigma=0.9",
            )

    def test_exact_fingerprints_as_certain_world(self, tmp_path):
        from repro.durability import replay_journaled

        journal = str(tmp_path / "jrnl")
        replay_journaled("synth:steady:200", journal, policy="easy",
                         n=200, window=50)
        result = replay_journaled(
            "synth:steady:200", journal, policy="easy", n=200,
            window=50, resume=True, uncertainty="exact",
        )
        assert result.totals["n_jobs"] == 200
