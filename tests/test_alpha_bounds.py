"""Tests for the alpha-RESASCHEDULING bound formulas (Figure 4)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstanceError
from repro.theory import (
    default_alpha_grid,
    figure4_series,
    gap_at,
    lower_bound_b1,
    lower_bound_b2,
    lower_bound_integer_case,
    upper_bound,
)


class TestUpperBound:
    def test_values(self):
        assert upper_bound(1) == 2
        assert upper_bound(0.5) == 4
        assert upper_bound(Fraction(1, 4)) == 8

    def test_paper_example_alpha_half(self):
        """'For α = 1/2, we obtain a bound of 4.'"""
        assert upper_bound(Fraction(1, 2)) == 4

    def test_domain(self):
        with pytest.raises(InvalidInstanceError):
            upper_bound(0)
        with pytest.raises(InvalidInstanceError):
            upper_bound(1.2)


class TestIntegerCaseLowerBound:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6, 10])
    def test_closed_form(self, k):
        alpha = Fraction(2, k)
        want = Fraction(2, alpha) - 1 + alpha / 2
        assert lower_bound_integer_case(alpha) == want

    def test_figure3_value(self):
        """α = 1/3 gives 2/α - 1 + α/2 = 6 - 1 + 1/6 = 31/6."""
        assert lower_bound_integer_case(Fraction(1, 3)) == Fraction(31, 6)

    def test_non_integral_rejected(self):
        with pytest.raises(InvalidInstanceError):
            lower_bound_integer_case(Fraction(3, 4))

    def test_float_input_returns_float(self):
        assert lower_bound_integer_case(0.5) == pytest.approx(3.25)


class TestB1B2:
    def test_b1_matches_integer_case_at_2_over_k(self):
        for k in range(2, 12):
            alpha = Fraction(2, k)
            assert lower_bound_b1(alpha) == lower_bound_integer_case(alpha)

    def test_b2_value_at_alpha_08(self):
        # 2/α = 2.5, ceil = 3, B2 = 3 - 2/2.5 = 2.2
        assert lower_bound_b2(Fraction(4, 5)) == Fraction(11, 5)

    def test_b1_value_at_alpha_08(self):
        # ceil=3; inner = 1 - 0.4*2 = 0.2; floor(0.6/0.2)=3; B1 = 2 + 1/4
        assert lower_bound_b1(Fraction(4, 5)) == Fraction(9, 4)

    def test_alpha_one(self):
        assert lower_bound_b1(Fraction(1)) == Fraction(3, 2)
        assert lower_bound_b2(Fraction(1)) == Fraction(3, 2)

    def test_fraction_in_fraction_out(self):
        assert isinstance(lower_bound_b1(Fraction(1, 3)), Fraction)
        assert isinstance(lower_bound_b2(Fraction(1, 3)), Fraction)

    def test_float_in_float_out(self):
        assert isinstance(lower_bound_b1(0.37), float)
        assert isinstance(lower_bound_b2(0.37), float)


class TestOrderingInvariants:
    """Figure 4's visual facts: upper >= B1 >= B2 > 1 on (0, 1]."""

    @settings(max_examples=300, deadline=None)
    @given(
        num=st.integers(min_value=1, max_value=200),
        den=st.integers(min_value=1, max_value=200),
    )
    def test_b1_dominates_b2_exact(self, num, den):
        if num > den:
            num, den = den, num
        alpha = Fraction(num, den)
        assert lower_bound_b1(alpha) >= lower_bound_b2(alpha)

    @settings(max_examples=300, deadline=None)
    @given(
        num=st.integers(min_value=1, max_value=200),
        den=st.integers(min_value=1, max_value=200),
    )
    def test_upper_dominates_b1_exact(self, num, den):
        if num > den:
            num, den = den, num
        alpha = Fraction(num, den)
        assert Fraction(2) / alpha >= lower_bound_b1(alpha)

    @settings(max_examples=200, deadline=None)
    @given(
        num=st.integers(min_value=1, max_value=100),
        den=st.integers(min_value=1, max_value=100),
    )
    def test_bounds_exceed_one(self, num, den):
        if num > den:
            num, den = den, num
        alpha = Fraction(num, den)
        assert lower_bound_b2(alpha) > 1

    def test_gap_shrinks_relatively_as_alpha_decreases(self):
        """At α = 2/k the absolute gap stays below 1 while the bounds grow,
        so the relative gap vanishes — the paper's 'arbitrarily close'."""
        for k in (2, 4, 8, 16, 64):
            alpha = Fraction(2, k)
            gap = gap_at(alpha)
            assert gap < 1
            assert gap / upper_bound(alpha) <= Fraction(1, k)


class TestSeries:
    def test_figure4_series_shape(self):
        grid = default_alpha_grid(50)
        rows = figure4_series(grid)
        assert len(rows) == 50
        for row in rows:
            assert row.upper >= row.b1 >= row.b2

    def test_default_grid_spans(self):
        grid = default_alpha_grid(100, lo=0.1)
        assert grid[0] == pytest.approx(0.1)
        assert grid[-1] == pytest.approx(1.0)
        assert all(a < b for a, b in zip(grid, grid[1:]))

    def test_grid_validation(self):
        with pytest.raises(InvalidInstanceError):
            default_alpha_grid(1)
