"""Tests for the worst-case families — each checked against its analytic
values AND by actually running the algorithms."""

from fractions import Fraction

import pytest

from repro.algorithms import ListScheduler, fcfs_schedule, list_schedule
from repro.core import lower_bound
from repro.errors import InvalidInstanceError
from repro.theory import (
    fcfs_worstcase_instance,
    graham_tight_instance,
    lower_bound_integer_case,
    proposition2_instance,
)


class TestProposition2Family:
    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_structure(self, k):
        fam = proposition2_instance(k)
        inst = fam.instance
        assert inst.m == k * k * (k - 1)
        assert inst.n == 2 * k - 1
        assert inst.n_reservations == 1
        res = inst.reservations[0]
        assert res.q == k * (k - 1) * (k - 2)
        assert res.start == k  # scaled: paper's t = 1
        # the alpha restriction holds exactly: U <= (1-α)m, q <= αm
        inst.validate_alpha(fam.alpha)

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_analytic_optimal_schedule_is_feasible_and_tight(self, k):
        fam = proposition2_instance(k)
        opt = fam.optimal_schedule()
        opt.verify()
        assert opt.makespan == fam.optimal_makespan == k
        # it is truly optimal: the area bound already matches, because the
        # machine is fully packed on [0, k)
        assert lower_bound(fam.instance) == k

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_lsrc_bad_order_hits_bound_exactly(self, k):
        fam = proposition2_instance(k)
        sched = list_schedule(fam.instance, order=fam.bad_order)
        sched.verify()
        assert sched.makespan == fam.lsrc_makespan == 1 + k * (k - 1)

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_ratio_equals_proposition2_formula(self, k):
        fam = proposition2_instance(k)
        assert fam.ratio == lower_bound_integer_case(Fraction(2, k))

    def test_figure3_exact_annotations(self):
        """Figure 3: α = 1/3 (k = 6, m = 180): C* = 6, Cmax = 5×6+1 = 31."""
        fam = proposition2_instance(6)
        assert fam.instance.m == 180
        assert fam.optimal_makespan == 6
        assert fam.lsrc_makespan == 31
        assert fam.ratio == Fraction(31, 6)

    def test_k_too_small_rejected(self):
        with pytest.raises(InvalidInstanceError):
            proposition2_instance(2)

    def test_good_order_does_much_better(self):
        """LSRC with the wide jobs first achieves the optimum here —
        ordering is everything on this family."""
        fam = proposition2_instance(5)
        good = [f"B{i}" for i in range(4)] + [f"A{i}" for i in range(5)]
        sched = list_schedule(fam.instance, order=good)
        sched.verify()
        assert sched.makespan == fam.optimal_makespan


class TestFCFSWorstCase:
    @pytest.mark.parametrize("m", [2, 3, 5, 8])
    def test_fcfs_hits_analytic_makespan(self, m):
        fam = fcfs_worstcase_instance(m, K=20)
        s = fcfs_schedule(fam.instance)
        s.verify()
        assert s.makespan == fam.fcfs_makespan == m * 20 + m - 1

    @pytest.mark.parametrize("m", [2, 3, 5])
    def test_optimal_schedule_verified(self, m):
        fam = fcfs_worstcase_instance(m, K=20)
        opt = fam.optimal_schedule()
        opt.verify()
        assert opt.makespan == fam.optimal_makespan
        # optimality certified by the work bound
        assert lower_bound(fam.instance) == fam.optimal_makespan

    def test_ratio_approaches_m(self):
        m = 6
        ratios = [
            float(fcfs_worstcase_instance(m, K=K).ratio)
            for K in (10, 100, 1000)
        ]
        assert ratios == sorted(ratios)
        assert ratios[-1] > m - 0.1

    def test_lsrc_is_fine_on_this_family(self):
        """LSRC backfills the narrow jobs: ratio stays near 1."""
        fam = fcfs_worstcase_instance(6, K=50)
        s = ListScheduler().schedule(fam.instance)
        s.verify()
        assert s.makespan <= 2 * fam.optimal_makespan

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            fcfs_worstcase_instance(1)
        with pytest.raises(InvalidInstanceError):
            fcfs_worstcase_instance(3, K=0)


class TestGrahamTightFamily:
    @pytest.mark.parametrize("m", [2, 3, 4, 6])
    def test_bad_order_achieves_2m_minus_1(self, m):
        fam = graham_tight_instance(m)
        s = list_schedule(fam.instance, order=fam.bad_order)
        s.verify()
        assert s.makespan == 2 * m - 1

    @pytest.mark.parametrize("m", [2, 3, 4, 6])
    def test_optimal_schedule(self, m):
        fam = graham_tight_instance(m)
        opt = fam.optimal_schedule()
        opt.verify()
        assert opt.makespan == m
        assert lower_bound(fam.instance) == m  # work bound is tight

    def test_ratio_is_graham_bound_exactly(self):
        from repro.theory import graham_ratio

        for m in (2, 3, 5, 10):
            fam = graham_tight_instance(m)
            assert fam.ratio == graham_ratio(m)

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            graham_tight_instance(1)
