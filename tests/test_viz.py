"""Tests for Gantt / SVG rendering."""


from repro.algorithms import list_schedule
from repro.core import RigidInstance, Schedule
from repro.theory import proposition2_instance
from repro.viz import render_gantt, render_utilization, save_svg, schedule_to_svg


class TestGantt:
    def test_contains_all_jobs_and_reservation(self, tiny_resa):
        s = list_schedule(tiny_resa)
        text = render_gantt(s)
        assert "Cmax" in text
        assert "/" in text          # reservation hatch
        assert "legend:" in text
        # one row per processor
        assert text.count("|") >= tiny_resa.m * 2

    def test_empty(self):
        inst = RigidInstance(m=2, jobs=())
        assert "empty" in render_gantt(Schedule(inst, {}))

    def test_blocks_painted_proportionally(self):
        inst = RigidInstance.from_specs(1, [(5, 1), (5, 1)])
        s = list_schedule(inst)
        text = render_gantt(s, width=40, legend=False)
        row = next(l for l in text.splitlines() if l.startswith("P"))
        # two jobs back to back fill the whole row
        body = row.split("|")[1]
        assert body.count("a") + body.count("b") == 40

    def test_large_machine_aggregated(self):
        fam = proposition2_instance(6)  # m = 180
        s = fam.optimal_schedule()
        text = render_gantt(s, max_rows=20)
        assert "aggregated" in text
        assert len(text.splitlines()) < 40

    def test_utilization_silhouette(self, tiny_resa):
        s = list_schedule(tiny_resa)
        text = render_utilization(s)
        assert "r(t)" in text
        assert "#" in text

    def test_horizon_limits_axis(self, tiny_resa):
        s = list_schedule(tiny_resa)
        text = render_gantt(s, horizon=100, legend=False)
        assert "100" in text


class TestSVG:
    def test_structure(self, tiny_resa):
        s = list_schedule(tiny_resa)
        svg = schedule_to_svg(s)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<rect") >= tiny_resa.n + 1  # jobs + frame
        assert "hatch" in svg  # reservation pattern
        assert "<title>" in svg

    def test_every_job_has_tooltips(self, tiny_rigid):
        s = list_schedule(tiny_rigid)
        svg = schedule_to_svg(s)
        for job in tiny_rigid.jobs:
            assert f"{job.label}:" in svg

    def test_escaping(self):
        inst = RigidInstance(
            m=1,
            jobs=(
                __import__("repro").core.Job(
                    id=0, p=1, q=1, name="<nasty&job>"
                ),
            ),
        )
        svg = schedule_to_svg(list_schedule(inst))
        assert "<nasty" not in svg
        assert "&lt;nasty&amp;job&gt;" in svg

    def test_save(self, tmp_path, tiny_resa):
        s = list_schedule(tiny_resa)
        path = save_svg(s, str(tmp_path / "out.svg"))
        content = open(path).read()
        assert content.startswith("<svg")

    def test_figure3_renders(self):
        """The Figure 3 pair renders without errors at m = 180."""
        fam = proposition2_instance(6)
        for sched in (fam.optimal_schedule(),):
            svg = schedule_to_svg(sched)
            assert svg.count("<rect") > 180
