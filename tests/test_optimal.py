"""Cross-validation of the exact solvers (BnB vs exhaustive vs m=1 DP)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    ListScheduler,
    branch_and_bound,
    exhaustive_optimal,
    optimal_makespan_m1,
    optimal_schedule,
)
from repro.core import ReservationInstance, RigidInstance, lower_bound
from repro.errors import SchedulingError, SearchBudgetExceeded

from conftest import random_resa, random_rigid


class TestBranchAndBound:
    def test_trivial(self):
        inst = RigidInstance.from_specs(2, [(3, 1)])
        res = branch_and_bound(inst)
        assert res.makespan == 3
        assert res.proven_optimal

    def test_empty(self):
        res = branch_and_bound(RigidInstance(m=2, jobs=()))
        assert res.makespan == 0

    def test_known_optimum(self, tiny_rigid):
        # work=20 on m=4 gives LB 5, but the q=4 job needs the whole
        # machine for 1 unit and no 5-length packing accommodates it:
        # the optimum is 6 (confirmed independently by exhaustive search)
        res = branch_and_bound(tiny_rigid)
        assert res.makespan == 6
        assert exhaustive_optimal(tiny_rigid).makespan == 6
        res.schedule.verify()

    def test_with_reservations(self, tiny_resa):
        res = branch_and_bound(tiny_resa)
        assert res.makespan == 7
        res.schedule.verify()

    def test_beats_or_ties_lsrc(self):
        for seed in range(15):
            inst = random_resa(seed, n=6)
            opt = branch_and_bound(inst)
            heur = ListScheduler().schedule(inst)
            assert opt.makespan <= heur.makespan

    def test_respects_lower_bound(self):
        for seed in range(15):
            inst = random_resa(seed, n=6)
            opt = branch_and_bound(inst)
            assert opt.makespan >= lower_bound(inst) - 1e-9

    def test_node_limit(self):
        inst = random_rigid(1, n=12, m=4)
        with pytest.raises(SearchBudgetExceeded) as err:
            branch_and_bound(inst, node_limit=3)
        assert err.value.incumbent is not None

    def test_upper_bound_hint_accelerates_but_preserves_value(self):
        inst = random_rigid(5, n=7, m=4)
        plain = branch_and_bound(inst)
        hinted = branch_and_bound(inst, upper_bound_hint=plain.makespan)
        assert hinted.makespan == plain.makespan
        assert hinted.nodes <= plain.nodes

    def test_optimal_schedule_wrapper(self, tiny_rigid):
        s = optimal_schedule(tiny_rigid)
        s.verify()
        assert s.makespan == 6


class TestExhaustive:
    def test_matches_bnb_on_rigid(self):
        for seed in range(20):
            inst = random_rigid(seed, n=5)
            a = branch_and_bound(inst).makespan
            b = exhaustive_optimal(inst).makespan
            assert a == b, f"seed {seed}: bnb {a} != exhaustive {b}"

    def test_matches_bnb_with_reservations(self):
        for seed in range(20):
            inst = random_resa(seed, n=5)
            a = branch_and_bound(inst).makespan
            b = exhaustive_optimal(inst).makespan
            assert a == b, f"seed {seed}: bnb {a} != exhaustive {b}"

    def test_too_many_jobs_rejected(self):
        inst = random_rigid(0, n=9 if False else None)
        inst = random_rigid(0, n=12, m=4)
        with pytest.raises(SchedulingError):
            exhaustive_optimal(inst)


class TestSingleMachineDP:
    def test_requires_m1(self, tiny_rigid):
        with pytest.raises(SchedulingError):
            optimal_makespan_m1(tiny_rigid)

    def test_no_holes_equals_sum(self):
        inst = RigidInstance.from_specs(1, [(2, 1), (3, 1), (1, 1)])
        assert optimal_makespan_m1(inst) == 6

    def test_with_holes_matches_bnb(self, single_machine_holes):
        dp = optimal_makespan_m1(single_machine_holes)
        bnb = branch_and_bound(single_machine_holes).makespan
        assert dp == bnb

    def test_dp_matches_bnb_random(self):
        import random as _r

        for seed in range(15):
            rng = _r.Random(seed)
            jobs = [(rng.randint(1, 4), 1) for _ in range(rng.randint(1, 7))]
            res, t = [], 2
            for _ in range(rng.randint(0, 3)):
                res.append((t, rng.randint(1, 2), 1))
                t += rng.randint(4, 8)
            inst = ReservationInstance.from_specs(1, jobs, res)
            assert optimal_makespan_m1(inst) == branch_and_bound(inst).makespan

    def test_gap_skipping_is_optimal(self):
        # hole [2, 4); jobs 2+2: the naive order wastes the first gap
        inst = ReservationInstance.from_specs(1, [(2, 1), (2, 1)], [(2, 2, 1)])
        assert optimal_makespan_m1(inst) == 6

    def test_rejects_releases(self):
        inst = RigidInstance.from_specs(1, [(1, 1, 2)])
        with pytest.raises(SchedulingError):
            optimal_makespan_m1(inst)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_bnb_equals_exhaustive_property(seed):
    inst = random_resa(seed, n=4)
    assert branch_and_bound(inst).makespan == exhaustive_optimal(inst).makespan
