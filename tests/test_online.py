"""Tests for the batch-doubling online wrapper (Section 2.1)."""


from repro.algorithms import (
    BatchDoublingScheduler,
    ConservativeBackfillScheduler,
    ListScheduler,
    batch_doubling_schedule,
    exhaustive_optimal,
)
from repro.core import ReservationInstance, RigidInstance
from repro.workloads import uniform_instance, with_poisson_releases

from conftest import random_rigid


class TestBatchStructure:
    def test_offline_instance_is_one_batch(self):
        inst = uniform_instance(10, 8, seed=1)
        batch = batch_doubling_schedule(inst)
        direct = ListScheduler().schedule(inst)
        assert batch.starts == direct.starts

    def test_late_jobs_wait_for_current_batch(self):
        # job 1 arrives while batch {0} is running; it must not start
        # before job 0 completes even though processors are free
        inst = RigidInstance.from_specs(4, [(10, 1), (1, 1, 2)])
        s = batch_doubling_schedule(inst)
        s.verify()
        assert s.starts[0] == 0
        assert s.starts[1] >= 10

    def test_batches_do_not_overlap(self):
        base = uniform_instance(20, 8, seed=2)
        timed = with_poisson_releases(base, rate=0.05, seed=3)
        s = batch_doubling_schedule(timed)
        s.verify()
        # reconstruct batch boundaries: sorted by start, a batch boundary
        # exists wherever a job starts exactly at/after all earlier ends...
        # weaker invariant that must hold: starts respect releases
        for job in timed.jobs:
            assert s.starts[job.id] >= job.release

    def test_gap_until_first_release(self):
        inst = RigidInstance.from_specs(2, [(1, 1, 5), (1, 1, 5)])
        s = batch_doubling_schedule(inst)
        assert s.starts[0] == 5 and s.starts[1] == 5

    def test_reservations_respected_across_batches(self):
        inst = ReservationInstance.from_specs(
            2,
            [(3, 2), (2, 2, 1)],
            [(4, 3, 2)],
        )
        s = batch_doubling_schedule(inst)
        s.verify()

    def test_inner_factory_plumbed(self):
        inst = uniform_instance(10, 8, seed=4)
        sched = BatchDoublingScheduler(ConservativeBackfillScheduler).schedule(
            inst
        )
        sched.verify()
        assert sched.algorithm == "batch[backfill-cons]"


class TestDoublingGuarantee:
    def test_within_twice_graham_of_optimum(self):
        """Cmax(batch LSRC) <= 2 (2 - 1/m) C*max — the SWW doubling bound
        on top of Theorem 2 — on random small instances with arrivals."""
        for seed in range(8):
            base = random_rigid(seed, n=5)
            inst = with_poisson_releases(base, rate=0.3, seed=seed)
            s = batch_doubling_schedule(inst)
            s.verify()
            opt = exhaustive_optimal(inst).makespan
            m = inst.m
            assert s.makespan <= 2 * (2 - 1 / m) * opt + 1e-9, f"seed {seed}"
