"""Tests for simulation timeline analytics and the profile renderer."""

import pytest

from repro.core import ResourceProfile
from repro.errors import InvalidInstanceError
from repro.simulation import (
    queue_length_timeline,
    running_count_timeline,
    simulate,
    summarize_timeline,
    utilization_timeline,
)
from repro.viz import render_profile
from repro.workloads import uniform_instance, with_poisson_releases


@pytest.fixture
def arrival_run():
    base = uniform_instance(15, 8, seed=2)
    timed = with_poisson_releases(base, rate=0.2, seed=3)
    return simulate(timed, "fcfs")


class TestQueueTimeline:
    def test_starts_and_ends_at_zero(self, arrival_run):
        steps = queue_length_timeline(arrival_run)
        assert steps[-1][1] == 0
        assert all(length >= 0 for _, length in steps)

    def test_monotone_times(self, arrival_run):
        steps = queue_length_timeline(arrival_run)
        times = [t for t, _ in steps]
        assert times == sorted(times)
        assert len(times) == len(set(times))  # coalesced per instant

    def test_offline_instance_queue_drains_at_zero(self):
        inst = uniform_instance(10, 8, seed=1)
        result = simulate(inst, "greedy")
        steps = queue_length_timeline(result)
        # everything arrives and many start at t=0
        assert steps[0][0] == 0

    def test_inconsistent_trace_detected(self, arrival_run):
        from repro.simulation.online_sim import SimulationResult, TraceEvent

        broken = SimulationResult(
            schedule=arrival_run.schedule,
            trace=[TraceEvent(0, "arrive", "x", 1)],
            policy="fcfs",
        )
        with pytest.raises(InvalidInstanceError):
            queue_length_timeline(broken)


class TestRunningTimeline:
    def test_running_counts_balance(self, arrival_run):
        steps = running_count_timeline(arrival_run)
        assert steps[-1][1] == 0
        assert max(c for _, c in steps) >= 1

    def test_utilization_profile_consistent(self, arrival_run):
        usage = utilization_timeline(arrival_run)
        m = arrival_run.schedule.instance.m
        assert usage.max_capacity() <= m


class TestSummary:
    def test_summary_fields(self, arrival_run):
        summary = summarize_timeline(arrival_run)
        assert summary.horizon == arrival_run.schedule.makespan or (
            summary.horizon >= arrival_run.schedule.makespan
        )
        assert summary.max_queue_length >= 1
        assert 0 <= summary.mean_queue_length <= summary.max_queue_length
        assert summary.total_queue_time >= 0
        assert summary.n_events == len(arrival_run.trace)

    def test_fcfs_queues_more_than_greedy(self):
        base = uniform_instance(20, 8, seed=5)
        timed = with_poisson_releases(base, rate=0.3, seed=6)
        fcfs = summarize_timeline(simulate(timed, "fcfs"))
        greedy = summarize_timeline(simulate(timed, "greedy"))
        assert greedy.total_queue_time <= fcfs.total_queue_time + 1e-9


class TestProfileRenderer:
    def test_renders_staircase(self):
        profile = ResourceProfile.from_segments([(0, 2), (5, 5), (9, 8)])
        text = render_profile(profile, width=40)
        assert "#" in text
        assert "availability" in text

    def test_custom_title_and_horizon(self):
        profile = ResourceProfile.constant(4)
        text = render_profile(profile, width=30, horizon=10, title="flat")
        assert text.startswith("flat")

    def test_bad_horizon(self):
        with pytest.raises(InvalidInstanceError):
            render_profile(ResourceProfile.constant(1), horizon=0)
