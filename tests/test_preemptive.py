"""Tests for the preemptive comparator (Schmidt condition + construction)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    preemptive_makespan,
    preemptive_schedule,
    price_of_nonpreemption,
)
from repro.core import Job, Reservation, ReservationInstance, RigidInstance
from repro.errors import InvalidInstanceError


def seq_instance(m, ps, reservations=()):
    jobs = tuple(Job(id=i, p=p, q=1) for i, p in enumerate(ps))
    return ReservationInstance(
        m=m, jobs=jobs, reservations=tuple(reservations)
    )


class TestSchmidtBound:
    def test_mcnaughton_no_reservations(self):
        """Without reservations the bound is max(pmax, W/m) — McNaughton."""
        inst = seq_instance(3, [5, 4, 3, 2, 1])
        # W = 15, m = 3 -> 5; pmax = 5
        assert preemptive_makespan(inst) == 5

    def test_pmax_dominates(self):
        inst = seq_instance(4, [10, 1, 1])
        assert preemptive_makespan(inst) == 10

    def test_fractional_average(self):
        inst = seq_instance(2, [3, 3, 3])
        # W = 9 over 2 machines = 4.5 > pmax
        assert preemptive_makespan(inst) == Fraction(9, 2)

    def test_reservation_shifts_bound(self):
        # one machine blocked on [0, 4): capacity is 1 until 4, then 2
        inst = seq_instance(2, [3, 3], [Reservation(id="r", start=0, p=4, q=1)])
        # k=1: largest job 3 fits by t=3; k=2: W=6 needs ∫min(m,2):
        # [0,4) rate 1 -> 4 by t=4, then rate 2 -> 6 at t=5
        assert preemptive_makespan(inst) == 5

    def test_k_condition_binds_in_the_middle(self):
        # two long jobs but only one machine early on
        inst = seq_instance(
            3, [6, 6, 1, 1],
            [Reservation(id="r", start=0, p=8, q=2)],
        )
        # k=2: 12 units at min(m,2): rate 1 until 8, rate 2 after ->
        # 8 + 4/2 = 10; k=1: 6 at rate 1 -> 6; k=4: W=14: rate 1 till 8,
        # then 3 -> 8 + 6/3 = 10
        assert preemptive_makespan(inst) == 10

    def test_empty(self):
        inst = RigidInstance(m=2, jobs=())
        assert preemptive_makespan(inst) == 0

    def test_rejects_parallel_jobs(self, tiny_rigid):
        with pytest.raises(InvalidInstanceError):
            preemptive_makespan(tiny_rigid)

    def test_rejects_releases(self):
        inst = RigidInstance.from_specs(2, [(1, 1, 3)])
        with pytest.raises(InvalidInstanceError):
            preemptive_makespan(inst)


class TestConstruction:
    def test_achieves_bound_simple(self):
        inst = seq_instance(3, [5, 4, 3, 2, 1])
        schedule = preemptive_schedule(inst)
        schedule.verify()
        assert schedule.makespan == preemptive_makespan(inst)

    def test_achieves_bound_with_reservations(self):
        inst = seq_instance(
            2, [3, 3], [Reservation(id="r", start=0, p=4, q=1)]
        )
        schedule = preemptive_schedule(inst)
        schedule.verify()
        assert schedule.makespan == 5

    def test_preemptions_are_counted(self):
        inst = seq_instance(2, [3, 3, 3])
        schedule = preemptive_schedule(inst)
        schedule.verify()
        # McNaughton wraps at least one job across machines
        assert schedule.preemption_count() >= 1

    def test_single_job(self):
        inst = seq_instance(2, [7])
        schedule = preemptive_schedule(inst)
        schedule.verify()
        assert schedule.makespan == 7
        assert schedule.preemption_count() == 0

    def test_empty(self):
        inst = RigidInstance(m=2, jobs=())
        schedule = preemptive_schedule(inst)
        assert schedule.makespan == 0
        schedule.verify()

    def test_work_conservation(self):
        inst = seq_instance(3, [4, 4, 2, 2, 1])
        schedule = preemptive_schedule(inst)
        for job in inst.jobs:
            assert schedule.work_of(job.id) == job.p


class TestPriceOfNonpreemption:
    def test_at_least_one(self):
        inst = seq_instance(2, [4, 3, 2, 1])
        assert price_of_nonpreemption(inst) >= 1

    def test_gap_around_reservations(self):
        """Non-preemptive LSRC cannot straddle a reservation; preemption
        can — the gap the paper's related-work section alludes to."""
        # m=1: job of length 4, full-machine reservation [2, 3)
        inst = seq_instance(
            1, [4], [Reservation(id="r", start=2, p=1, q=1)]
        )
        # preemptive: run [0,2) and [3,5) -> Cmax 5
        assert preemptive_makespan(inst) == 5
        schedule = preemptive_schedule(inst)
        schedule.verify()
        assert schedule.makespan == 5
        # non-preemptive: must start after the reservation -> 7
        ratio = price_of_nonpreemption(inst)
        assert ratio == Fraction(7, 5)

    def test_no_gap_without_reservations_when_balanced(self):
        inst = seq_instance(2, [3, 3])
        assert price_of_nonpreemption(inst) == 1


@settings(max_examples=60, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=5),
    ps=st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=8),
    res_spec=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10),  # start
            st.integers(min_value=1, max_value=6),   # duration
        ),
        max_size=2,
    ),
)
def test_construction_always_achieves_schmidt_bound(m, ps, res_spec):
    """Property: the segment-filling construction attains the Schmidt
    optimum and passes full verification, for random jobs and (feasible)
    reservations leaving at least one machine."""
    reservations = []
    budget = m - 1  # keep >= 1 machine free so the bound is finite
    from repro.core import ResourceProfile

    room = ResourceProfile.constant(budget) if budget else None
    for i, (start, dur) in enumerate(res_spec):
        if room is None:
            break
        avail = room.min_capacity(start, start + dur)
        if avail < 1:
            continue
        room.reserve(start, dur, 1)
        reservations.append(Reservation(id=f"r{i}", start=start, p=dur, q=1))
    inst = seq_instance(m, ps, reservations)
    bound = preemptive_makespan(inst)
    schedule = preemptive_schedule(inst)
    schedule.verify()
    assert schedule.makespan == bound
