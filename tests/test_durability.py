"""Crash-safety of the durability layer, asserted the honest way.

The kill matrix SIGKILLs a *subprocess* replay at every registered
failpoint on the journaled path (nothing is flushed, no ``atexit`` runs
— a real ``kill -9``), resumes in-process, and asserts the JSONL store
is byte-identical to an uninterrupted run's.  Corruption tests damage
journal bytes directly: a mid-file bit flip must reject loudly
(:class:`JournalCorruptError`), while the same damage at the tail is a
torn write and recovers cleanly.  The epoch tests kill and hang sharded
replay workers and assert the self-healing orchestrator still produces
serial-identical output, recording what it healed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from contextlib import nullcontext
from pathlib import Path

import pytest

import repro
from repro.devtools import failpoints
from repro.devtools.failpoints import FailpointError
from repro.durability import Journal, replay_journaled, scan_journal
from repro.errors import JournalCorruptError, JournalError, ReplayRelayError
from repro.run.store import JsonlStore
from repro.simulation.replay import (
    ReplayEngine,
    _await_epoch_checkpoint,
    replay_epochs,
)
from repro.workloads.swf import synth_swf_jobs

SRC_ROOT = Path(repro.__file__).resolve().parents[1]

TRACE = "synth:steady:3000"
M = 64
WINDOW = 500
INTERVAL = 800  # 4 slices, 3 snapshots over the 3000-job trace

_CHILD = f"""
import sys
from repro.durability import replay_journaled
replay_journaled(
    "{TRACE}", sys.argv[1], policy="easy", m={M}, store=sys.argv[2],
    snapshot_interval={INTERVAL}, window={WINDOW},
)
"""


@pytest.fixture(autouse=True)
def _reset_failpoints():
    failpoints.reset()
    yield
    failpoints.reset()


def _journaled(journal_dir, store, **kwargs):
    return replay_journaled(
        TRACE, journal_dir, policy="easy", m=M, store=store,
        snapshot_interval=INTERVAL, window=WINDOW, **kwargs,
    )


@pytest.fixture(scope="module")
def reference_store_bytes(tmp_path_factory) -> bytes:
    """The uninterrupted journaled run's JSONL store, byte for byte."""
    base = tmp_path_factory.mktemp("reference")
    store = base / "rows.jsonl"
    replay_journaled(
        TRACE, str(base / "journal"), policy="easy", m=M, store=str(store),
        snapshot_interval=INTERVAL, window=WINDOW,
    )
    return store.read_bytes()


def _spawn_killed_run(journal_dir, store, spec: str) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT) + os.pathsep + env.get("PYTHONPATH", "")
    env[failpoints.ENV_VAR] = spec
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(journal_dir), str(store)],
        env=env, capture_output=True, text=True,
    )
    return proc.returncode


# ---------------------------------------------------------------------------
# kill-anywhere byte identity
# ---------------------------------------------------------------------------

KILL_SPECS = (
    "replay.slice.start:after=1",
    "replay.slice.commit:after=1",
    "journal.record.append:after=4",
    "journal.record.torn",
    "journal.snapshot.write:after=1",
    "journal.snapshot.rename:after=1",
    "journal.snapshot.marker:after=1",
    "journal.commit",
    "store.append:after=3",
)


@pytest.mark.parametrize("spec", KILL_SPECS, ids=lambda s: s.split(":")[0])
def test_kill_anywhere_resume_is_byte_identical(
    tmp_path, spec, reference_store_bytes
):
    journal_dir = tmp_path / "journal"
    store = tmp_path / "rows.jsonl"
    rc = _spawn_killed_run(journal_dir, store, spec)
    assert rc == -signal.SIGKILL, f"failpoint {spec!r} never fired (rc={rc})"
    with pytest.warns(UserWarning) if "torn" in spec else nullcontext():
        result = _journaled(str(journal_dir), str(store), resume=True)
    assert store.read_bytes() == reference_store_bytes
    assert result.totals["n_jobs"] == 3000


def test_double_kill_then_resume(tmp_path, reference_store_bytes):
    """Two kills at different sites, then a clean resume, same bytes."""
    journal_dir = tmp_path / "journal"
    store = tmp_path / "rows.jsonl"
    assert _spawn_killed_run(
        journal_dir, store, "journal.snapshot.marker:after=1"
    ) == -signal.SIGKILL
    # the resume itself is killed right before the final commit record
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT) + os.pathsep + env.get("PYTHONPATH", "")
    env[failpoints.ENV_VAR] = "journal.commit"
    child = _CHILD.replace("store=sys.argv[2],", "store=sys.argv[2], resume=True,")
    proc = subprocess.run(
        [sys.executable, "-c", child, str(journal_dir), str(store)],
        env=env, capture_output=True, text=True,
    )
    assert proc.returncode == -signal.SIGKILL
    _journaled(str(journal_dir), str(store), resume=True)
    assert store.read_bytes() == reference_store_bytes


# ---------------------------------------------------------------------------
# journal lifecycle and corruption
# ---------------------------------------------------------------------------


def _complete_journal(tmp_path):
    journal_dir = tmp_path / "journal"
    store = tmp_path / "rows.jsonl"
    _journaled(str(journal_dir), str(store))
    return journal_dir, store


def test_committed_resume_is_a_pure_read(tmp_path, reference_store_bytes):
    journal_dir, store = _complete_journal(tmp_path)
    before = sorted(
        (p.name, p.stat().st_size) for p in journal_dir.iterdir()
    )
    result = _journaled(str(journal_dir), str(store), resume=True)
    after = sorted((p.name, p.stat().st_size) for p in journal_dir.iterdir())
    assert before == after
    assert store.read_bytes() == reference_store_bytes
    assert result.totals["n_jobs"] == 3000


def test_fresh_run_refuses_existing_journal(tmp_path):
    journal_dir, store = _complete_journal(tmp_path)
    with pytest.raises(JournalError, match="already contains a journal"):
        _journaled(str(journal_dir), str(store))


def test_resume_rejects_mismatched_config(tmp_path):
    journal_dir, store = _complete_journal(tmp_path)
    with pytest.raises(JournalError, match="does not match"):
        replay_journaled(
            TRACE, str(journal_dir), policy="fcfs", m=M, store=str(store),
            snapshot_interval=INTERVAL, window=WINDOW, resume=True,
        )


def test_resume_of_nothing_is_loud(tmp_path):
    with pytest.raises(JournalError, match="no journal"):
        _journaled(str(tmp_path / "absent"), None, resume=True)


def test_mid_file_bit_flip_rejects_loudly(tmp_path):
    journal_dir, _ = _complete_journal(tmp_path)
    seg0 = journal_dir / "seg-00000000.wal"
    data = bytearray(seg0.read_bytes())
    data[10] ^= 0x40  # inside the header record's payload
    seg0.write_bytes(bytes(data))
    with pytest.raises(JournalCorruptError):
        scan_journal(str(journal_dir))
    with pytest.raises(JournalCorruptError):
        Journal.open_for_resume(str(journal_dir))


def test_truncated_tail_recovers_cleanly(tmp_path, reference_store_bytes):
    journal_dir, store = _complete_journal(tmp_path)
    segments = sorted(journal_dir.glob("seg-*.wal"))
    tail = segments[-1]
    tail_size = tail.stat().st_size
    os.truncate(tail, tail_size - 3)  # tear the commit record
    scan = scan_journal(str(journal_dir))
    assert scan.torn is not None
    with pytest.warns(UserWarning, match="torn"):
        result = _journaled(str(journal_dir), str(store), resume=True)
    assert store.read_bytes() == reference_store_bytes
    assert result.totals["n_jobs"] == 3000


def test_create_then_scan_roundtrip(tmp_path):
    journal_dir = tmp_path / "j"
    with Journal.create(str(journal_dir), {"demo": 1}) as journal:
        journal.append_row({"key": "w0", "v": 1})
        journal.snapshot(b"state-1", {"arrived": 10})
        journal.append_row({"key": "w1", "v": 2})
        journal.commit({"rows": 2})
    journal, recovery = Journal.open_for_resume(str(journal_dir))
    journal.close()
    assert recovery.committed
    assert recovery.rows == [{"key": "w0", "v": 1}, {"key": "w1", "v": 2}]
    assert recovery.config == {"demo": 1}


def test_uncommitted_rows_are_dropped_on_resume(tmp_path):
    journal_dir = tmp_path / "j"
    with Journal.create(str(journal_dir), {"demo": 1}) as journal:
        journal.append_row({"key": "w0"})
        journal.snapshot(b"state-1", {"arrived": 10})
        journal.append_row({"key": "w1"})  # uncommitted: after the marker
    journal, recovery = Journal.open_for_resume(str(journal_dir))
    journal.close()
    assert not recovery.committed
    assert recovery.rows == [{"key": "w0"}]
    assert recovery.discarded_rows == 1
    assert recovery.snapshot == b"state-1"


# ---------------------------------------------------------------------------
# failpoint harness
# ---------------------------------------------------------------------------


def test_unknown_failpoint_is_loud():
    with pytest.raises(FailpointError, match="unknown failpoint"):
        failpoints.parse_spec("no.such.site:mode=error")
    with pytest.raises(FailpointError, match="unknown failpoint"):
        failpoints.arm("no.such.site")


def test_malformed_spec_is_loud():
    with pytest.raises(FailpointError, match="malformed option"):
        failpoints.parse_spec("journal.commit:after")
    with pytest.raises(FailpointError, match="unknown option"):
        failpoints.parse_spec("journal.commit:frequency=2")
    with pytest.raises(FailpointError, match="mode must be"):
        failpoints.parse_spec("journal.commit:mode=explode")


def test_after_and_count_gate_firing():
    failpoints.arm("journal.commit", "error", after=2, count=1)
    failpoints.fire("journal.commit")  # hit 1: skipped
    failpoints.fire("journal.commit")  # hit 2: skipped
    with pytest.raises(FailpointError):
        failpoints.fire("journal.commit")  # hit 3: fires
    failpoints.fire("journal.commit")  # count exhausted


def test_once_sentinel_fires_exactly_once(tmp_path):
    sentinel = tmp_path / "fired"
    failpoints.arm("journal.commit", "error", once=str(sentinel))
    with pytest.raises(FailpointError):
        failpoints.fire("journal.commit")
    assert sentinel.exists()
    failpoints.fire("journal.commit")  # sentinel already claimed


def test_env_spec_arms_and_reset_disarms(monkeypatch):
    monkeypatch.setenv(failpoints.ENV_VAR, "journal.commit:mode=error")
    assert failpoints.armed_names() == ("journal.commit",)
    with pytest.raises(FailpointError):
        failpoints.fire("journal.commit")
    failpoints.reset()
    monkeypatch.delenv(failpoints.ENV_VAR)
    failpoints.fire("journal.commit")  # disarmed: no-op


def test_before_callback_runs_only_when_firing():
    staged = []
    failpoints.fire("journal.record.torn", before=lambda: staged.append(1))
    assert staged == []  # not armed: the partial write must not happen
    failpoints.arm("journal.record.torn", "error")
    with pytest.raises(FailpointError):
        failpoints.fire("journal.record.torn", before=lambda: staged.append(1))
    assert staged == [1]


# ---------------------------------------------------------------------------
# self-healing epoch replay
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def epoch_reference():
    jobs = list(synth_swf_jobs("steady", 3000, m=M, seed=3))
    engine = ReplayEngine(M, policy="easy", window=WINDOW)
    result = engine.run(list(jobs))
    return jobs, result


def _stable_totals(totals):
    return {k: v for k, v in totals.items() if k != "elapsed_seconds"}


def test_killed_epoch_worker_is_retried(tmp_path, epoch_reference, monkeypatch):
    jobs, reference = epoch_reference
    monkeypatch.setenv(
        failpoints.ENV_VAR,
        f"epoch.slice.run:mode=crash:once={tmp_path / 'fired'}",
    )
    result = replay_epochs(
        list(jobs), policy="easy", epochs=3, m=M, window=WINDOW,
        retry_backoff=0.05,
    )
    assert result.windows == reference.windows
    assert _stable_totals(result.totals) == _stable_totals(reference.totals)
    assert [rec["action"] for rec in result.recoveries] == ["retry"]


def test_exhausted_retries_degrade_to_serial(
    tmp_path, epoch_reference, monkeypatch
):
    jobs, reference = epoch_reference
    monkeypatch.setenv(
        failpoints.ENV_VAR,
        f"epoch.checkpoint.publish:mode=crash:once={tmp_path / 'fired'}",
    )
    result = replay_epochs(
        list(jobs), policy="easy", epochs=3, m=M, window=WINDOW,
        max_retries=0, retry_backoff=0.05,
    )
    assert result.windows == reference.windows
    assert _stable_totals(result.totals) == _stable_totals(reference.totals)
    assert [rec["action"] for rec in result.recoveries] == ["serial-fallback"]


def test_recoveries_never_reach_the_store(tmp_path, epoch_reference, monkeypatch):
    jobs, reference = epoch_reference
    plain = tmp_path / "plain.jsonl"
    engine = ReplayEngine(M, policy="easy", window=WINDOW, store=str(plain))
    engine.run(list(jobs))
    monkeypatch.setenv(
        failpoints.ENV_VAR,
        f"epoch.slice.run:mode=crash:once={tmp_path / 'fired'}",
    )
    healed = tmp_path / "healed.jsonl"
    result = replay_epochs(
        list(jobs), policy="easy", epochs=3, m=M, window=WINDOW,
        store=str(healed), retry_backoff=0.05,
    )
    assert result.recoveries
    plain_rows = [json.loads(line) for line in plain.read_text().splitlines()]
    healed_rows = [json.loads(line) for line in healed.read_text().splitlines()]
    for rows in (plain_rows, healed_rows):
        for row in rows:
            row.pop("elapsed_seconds", None)
    assert healed_rows == plain_rows


def test_await_epoch_checkpoint_detects_dead_predecessor(tmp_path):
    """The liveness fix: no heartbeat, no checkpoint, no error record
    must fail in ~liveness_timeout, not the full relay timeout."""
    started = time.monotonic()
    with pytest.raises(ReplayRelayError, match="heartbeat"):
        _await_epoch_checkpoint(
            str(tmp_path), 0, timeout=60.0, liveness_timeout=0.2
        )
    assert time.monotonic() - started < 5.0


def test_await_epoch_checkpoint_reports_recorded_cause(tmp_path):
    err = tmp_path / "ckpt-0000.err"
    err.write_text(json.dumps(
        {"epoch": 0, "type": "ValueError", "error": "boom"}
    ))
    with pytest.raises(ReplayRelayError, match="ValueError: boom"):
        _await_epoch_checkpoint(str(tmp_path), 0, timeout=5.0)


# ---------------------------------------------------------------------------
# JsonlStore crash-safe resume
# ---------------------------------------------------------------------------


def test_store_restores_missing_trailing_newline(tmp_path):
    store = JsonlStore(str(tmp_path / "rows.jsonl"))
    store.append({"key": "aa", "v": 1})
    intact = Path(store.path).read_bytes()
    os.truncate(store.path, len(intact) - 1)  # the newline alone is lost
    with pytest.warns(UserWarning, match="newline"):
        rows = store.load()
    assert rows == [{"key": "aa", "v": 1}]
    assert Path(store.path).read_bytes() == intact


def test_store_append_failpoint_is_wired(tmp_path):
    store = JsonlStore(str(tmp_path / "rows.jsonl"))
    failpoints.arm("store.append", "error")
    with pytest.raises(FailpointError):
        store.append({"key": "aa"})
    failpoints.reset()
    store.append({"key": "aa"})
    assert store.keys() == {"aa"}
