"""Tests for the Graham-bound machinery (Theorem 2 and Lemma 1)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import ListScheduler, exhaustive_optimal
from repro.core import ReservationInstance, RigidInstance, Schedule
from repro.errors import InvalidInstanceError
from repro.theory import (
    check_lemma1,
    graham_ratio,
    lemma1_violations,
    nonincreasing_ratio,
    theorem2_check,
    work_area_inequality,
)

from conftest import random_rigid


class TestGrahamRatio:
    def test_values(self):
        assert graham_ratio(1) == 1
        assert graham_ratio(2) == Fraction(3, 2)
        assert graham_ratio(10) == Fraction(19, 10)

    def test_rejects_bad_m(self):
        with pytest.raises(InvalidInstanceError):
            graham_ratio(0)


class TestLemma1:
    def test_holds_on_lsrc_schedules(self):
        for seed in range(20):
            inst = random_rigid(seed)
            s = ListScheduler().schedule(inst)
            assert lemma1_violations(s) == [], f"seed {seed}"

    def test_holds_for_every_priority_rule(self, tiny_rigid):
        for rule in ("fifo", "lpt", "spt", "laf", "widest", "narrowest"):
            s = ListScheduler(rule).schedule(tiny_rigid)
            check_lemma1(s)

    def test_detects_artificial_violation(self):
        """A deliberately lazy schedule (idle machine with work pending)
        violates the lemma."""
        inst = RigidInstance.from_specs(2, [(1, 1), (1, 1), (1, 1), (1, 1)])
        # run jobs strictly one at a time: r(t) = 1 everywhere, pmax = 1,
        # so r(t) + r(t') = 2 <= m = 2 for t' >= t + 1
        lazy = Schedule(inst, {0: 0, 1: 1, 2: 2, 3: 3})
        lazy.verify()
        assert lemma1_violations(lazy)
        with pytest.raises(AssertionError):
            check_lemma1(lazy)

    def test_empty_schedule(self):
        inst = RigidInstance(m=2, jobs=())
        assert lemma1_violations(Schedule(inst, {})) == []

    def test_single_job_has_no_valid_pairs(self):
        inst = RigidInstance.from_specs(2, [(3, 1)])
        s = Schedule(inst, {0: 0})
        # t' >= t + pmax = t + 3 never lands inside [0, 3)
        assert lemma1_violations(s) == []


class TestTheorem2:
    def test_certifies_lsrc_against_exact_optimum(self):
        for seed in range(15):
            inst = random_rigid(seed, n=5)
            s = ListScheduler().schedule(inst)
            cstar = exhaustive_optimal(inst).makespan
            ratio, guarantee = theorem2_check(s, cstar)
            assert ratio <= guarantee

    def test_rejects_fake_optimum(self, tiny_rigid):
        s = ListScheduler().schedule(tiny_rigid)
        with pytest.raises(AssertionError):
            # claiming C* = 1 makes the ratio blow past 2 - 1/m
            theorem2_check(s, 1)

    def test_rejects_nonpositive_cstar(self, tiny_rigid):
        s = ListScheduler().schedule(tiny_rigid)
        with pytest.raises(InvalidInstanceError):
            theorem2_check(s, 0)


class TestWorkAreaInequality:
    def test_inequality_chain_on_lsrc(self):
        """X >= (m+1)(1-x)C* and X <= W - x C* on real schedules."""
        for seed in range(12):
            inst = random_rigid(seed, n=6)
            s = ListScheduler().schedule(inst)
            cstar = exhaustive_optimal(inst).makespan
            X, lower, upper = work_area_inequality(s, cstar)
            assert X >= lower - 1e-9, f"seed {seed}: X={X} < lower={lower}"
            assert X <= upper + 1e-9, f"seed {seed}: X={X} > upper={upper}"

    def test_degenerate_window(self, tiny_rigid):
        s = ListScheduler().schedule(tiny_rigid)
        # with cstar = makespan, x = 1 and the window is empty
        X, lower, upper = work_area_inequality(s, s.makespan)
        assert X == 0 and lower == 0


class TestNonincreasingRatio:
    def test_value(self):
        inst = ReservationInstance.from_specs(
            4, [(1, 1)], [(0, 10, 2), (0, 5, 1)]
        )
        # availability at C* = 3: capacity at t=3 is 4 - 3 = 1
        assert nonincreasing_ratio(inst, 3) == 2 - Fraction(1, 1)
        # at t = 7 one reservation remains: capacity 2
        assert nonincreasing_ratio(inst, 7) == 2 - Fraction(1, 2)

    def test_requires_nonincreasing(self):
        inst = ReservationInstance.from_specs(4, [(1, 1)], [(3, 2, 1)])
        with pytest.raises(InvalidInstanceError):
            nonincreasing_ratio(inst, 5)

    def test_never_weaker_than_graham(self):
        """2 - 1/m(C*) <= ... >= hmm: m(C*) <= m so the guarantee is at
        most 2 - 1/m — i.e. Proposition 1 is at least as strong."""
        inst = ReservationInstance.from_specs(
            8, [(1, 1)], [(0, 10, 4)]
        )
        assert nonincreasing_ratio(inst, 5) <= graham_ratio(8)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_lemma1_property_on_random_lsrc(seed):
    """Lemma 1 holds for LSRC on arbitrary rigid instances — this is the
    executable version of the appendix proof's key step."""
    inst = random_rigid(seed)
    s = ListScheduler().schedule(inst)
    assert lemma1_violations(s) == []


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_theorem2_property(seed):
    """Cmax(LSRC) <= (2 - 1/m) C*max on random small instances — the
    executable Theorem 2."""
    inst = random_rigid(seed, n=5)
    s = ListScheduler().schedule(inst)
    cstar = exhaustive_optimal(inst).makespan
    assert s.makespan <= graham_ratio(inst.m) * cstar + 1e-9
