"""Tests for the one-call paper verification battery."""


from repro.analysis import verify_paper_claims


class TestVerifyPaperClaims:
    def test_all_claims_pass(self):
        report = verify_paper_claims(seed=0)
        assert report.all_passed, [
            (r.claim, r.detail) for r in report.results if not r.passed
        ]

    def test_covers_every_paper_artifact(self):
        report = verify_paper_claims(seed=1)
        claims = " ".join(r.claim for r in report.results)
        for keyword in (
            "Theorem 1",
            "Proposition 1",
            "Proposition 2",
            "Proposition 3",
            "Theorem 2",
            "Figure 4",
            "FCFS",
        ):
            assert keyword in claims

    def test_seed_changes_workloads_not_verdicts(self):
        for seed in (0, 7, 99):
            assert verify_paper_claims(seed=seed).all_passed

    def test_rows_form(self):
        report = verify_paper_claims(seed=2)
        rows = report.as_rows()
        assert all({"claim", "passed", "detail"} <= set(r) for r in rows)
        assert all(r["detail"] for r in rows)
