"""Tests for the discrete-event engine and the online cluster simulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import fcfs_schedule, list_schedule
from repro.core import ReservationInstance, RigidInstance
from repro.errors import SchedulingError
from repro.simulation import (
    ClusterState,
    OnlineSimulation,
    SimulationError,
    Simulator,
    simulate,
)
from repro.workloads import uniform_instance, with_poisson_releases

from conftest import random_resa


class TestEngine:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule_at(5, lambda s: log.append(5))
        sim.schedule_at(1, lambda s: log.append(1))
        sim.schedule_at(3, lambda s: log.append(3))
        sim.run()
        assert log == [1, 3, 5]
        assert sim.now == 5
        assert sim.processed == 3

    def test_priority_order_at_same_time(self):
        sim = Simulator()
        log = []
        sim.schedule_at(2, lambda s: log.append("decision"), priority=2)
        sim.schedule_at(2, lambda s: log.append("completion"), priority=0)
        sim.schedule_at(2, lambda s: log.append("arrival"), priority=1)
        sim.run()
        assert log == ["completion", "arrival", "decision"]

    def test_fifo_among_equal_priority(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule_at(1, lambda s, i=i: log.append(i), priority=1)
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_handlers_can_schedule(self):
        sim = Simulator()
        log = []

        def chain(s):
            log.append(s.now)
            if s.now < 3:
                s.schedule_in(1, chain)

        sim.schedule_at(0, chain)
        sim.run()
        assert log == [0, 1, 2, 3]

    def test_no_time_travel(self):
        sim = Simulator()
        sim.schedule_at(5, lambda s: s.schedule_at(1, lambda s2: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_in(-1, lambda s: None)

    def test_run_until(self):
        sim = Simulator()
        log = []
        for t in (1, 2, 10):
            sim.schedule_at(t, lambda s: log.append(s.now))
        sim.run(until=5)
        assert log == [1, 2]
        assert sim.pending == 1

    def test_runaway_guard(self):
        sim = Simulator()

        def forever(s):
            s.schedule_in(1, forever)

        sim.schedule_at(0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_step_and_peek(self):
        sim = Simulator()
        sim.schedule_at(4, lambda s: None)
        assert sim.peek_time() == 4
        assert sim.step()
        assert not sim.step()


class TestClusterState:
    def test_start_and_complete(self, tiny_rigid):
        state = ClusterState(tiny_rigid.to_reservation_instance())
        job = tiny_rigid.jobs[0]
        state.enqueue(job)
        assert state.can_start_now(job, 0)
        placed = state.start_job(job, 0)
        assert placed.end == job.p
        assert not state.queue
        state.complete_job(job.id, job.p)
        assert state.all_done

    def test_start_unfit_rejected(self, tiny_resa):
        state = ClusterState(tiny_resa)
        wide = tiny_resa.jobs[3]  # q = 4, blocked by the reservation
        state.enqueue(wide)
        with pytest.raises(SchedulingError):
            state.start_job(wide, 3)

    def test_complete_wrong_time_rejected(self, tiny_rigid):
        state = ClusterState(tiny_rigid.to_reservation_instance())
        job = tiny_rigid.jobs[0]
        state.enqueue(job)
        state.start_job(job, 0)
        with pytest.raises(SchedulingError):
            state.complete_job(job.id, job.p + 1)

    def test_complete_unknown_rejected(self, tiny_rigid):
        state = ClusterState(tiny_rigid.to_reservation_instance())
        with pytest.raises(SchedulingError):
            state.complete_job("ghost", 0)


class TestOnlinePolicies:
    def test_greedy_matches_offline_lsrc_on_offline_instance(self):
        for seed in range(8):
            inst = uniform_instance(15, 8, seed=seed)
            online = simulate(inst, "greedy")
            offline = list_schedule(inst)
            assert online.schedule.starts == offline.starts, f"seed {seed}"

    def test_fcfs_matches_offline_fcfs_on_offline_instance(self):
        for seed in range(8):
            inst = uniform_instance(15, 8, seed=seed)
            online = simulate(inst, "fcfs")
            offline = fcfs_schedule(inst)
            assert (
                online.schedule.makespan == offline.makespan
            ), f"seed {seed}"

    def test_conservative_close_to_offline(self):
        # online conservative re-plans, so starts can differ, but the
        # schedule must verify and respect arrival order reservations
        for seed in range(5):
            inst = uniform_instance(12, 8, seed=seed)
            online = simulate(inst, "conservative")
            online.schedule.verify()

    def test_all_policies_with_arrivals_and_reservations(self):
        base = uniform_instance(15, 8, seed=9)
        timed = with_poisson_releases(base, rate=0.1, seed=10)
        inst = ReservationInstance(
            m=8,
            jobs=timed.jobs,
            reservations=(
                __import__("repro").core.Reservation(
                    id="R", start=20, p=30, q=4
                ),
            ),
        )
        for policy in ("fcfs", "greedy", "easy", "conservative"):
            result = simulate(inst, policy)
            result.schedule.verify()
            for job in inst.jobs:
                assert result.schedule.starts[job.id] >= job.release

    def test_trace_structure(self):
        inst = uniform_instance(6, 4, seed=11)
        result = simulate(inst, "greedy")
        kinds = [e.kind for e in result.trace]
        assert kinds.count("arrive") == 6
        assert kinds.count("start") == 6
        assert kinds.count("finish") == 6
        # arrivals precede starts precede finishes per job
        for job in inst.jobs:
            t_arr = next(
                e.time for e in result.trace
                if e.kind == "arrive" and e.job_id == job.id
            )
            t_start = next(
                e.time for e in result.trace
                if e.kind == "start" and e.job_id == job.id
            )
            t_fin = next(
                e.time for e in result.trace
                if e.kind == "finish" and e.job_id == job.id
            )
            assert t_arr <= t_start < t_fin

    def test_unknown_policy(self):
        inst = uniform_instance(3, 4, seed=0)
        with pytest.raises(SchedulingError):
            OnlineSimulation(inst, "psychic")

    def test_easy_head_not_delayed(self):
        """EASY's contract: the queue head never starts later than its
        earliest start computed at any decision instant (spot-check via
        comparison with pure FCFS head starts)."""
        inst = RigidInstance.from_specs(
            2, [(2, 1), (2, 2), (10, 1), (2, 1)]
        )
        easy = simulate(inst, "easy").schedule
        assert easy.starts[1] == 2   # same as offline analysis
        assert easy.starts[3] == 0   # short narrow backfilled


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    policy=st.sampled_from(["fcfs", "greedy", "easy", "conservative"]),
)
def test_simulation_always_produces_feasible_schedules(seed, policy):
    inst = random_resa(seed)
    result = simulate(inst, policy)
    result.schedule.verify()
