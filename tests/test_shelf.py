"""Tests for shelf-based schedulers (the conclusion's packing heuristics)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    FirstFitShelfScheduler,
    ListScheduler,
    NextFitShelfScheduler,
    shelf_schedule,
)
from repro.algorithms.shelf import _build_shelves_ff, _build_shelves_nf
from repro.core import ReservationInstance, RigidInstance
from repro.errors import SchedulingError

from conftest import random_resa, random_rigid


class TestShelfConstruction:
    def test_nf_shelves_respect_width(self):
        inst = random_rigid(5, n=12, m=8)
        shelves = _build_shelves_nf(list(inst.jobs), inst.m)
        for shelf in shelves:
            assert shelf.width <= inst.m
            assert shelf.width == sum(j.q for j in shelf.jobs)

    def test_ff_shelves_respect_width(self):
        inst = random_rigid(6, n=12, m=8)
        shelves = _build_shelves_ff(list(inst.jobs), inst.m)
        for shelf in shelves:
            assert shelf.width <= inst.m

    def test_ff_no_more_shelves_than_nf(self):
        """First-fit can only merge shelves relative to next-fit."""
        for seed in range(15):
            inst = random_rigid(seed, n=10, m=8)
            nf = _build_shelves_nf(list(inst.jobs), inst.m)
            ff = _build_shelves_ff(list(inst.jobs), inst.m)
            assert len(ff) <= len(nf)

    def test_shelf_height_is_first_job(self):
        # decreasing-p order means the first job of each shelf is tallest
        inst = random_rigid(9, n=10, m=8)
        shelves = _build_shelves_ff(list(inst.jobs), inst.m)
        for shelf in shelves:
            assert shelf.height == max(j.p for j in shelf.jobs)


class TestShelfScheduling:
    def test_jobs_in_same_shelf_start_together(self):
        inst = RigidInstance.from_specs(4, [(3, 2), (3, 2), (1, 4)])
        s = NextFitShelfScheduler().schedule(inst)
        s.verify()
        assert s.starts[0] == s.starts[1]  # same shelf (2+2 = m)

    def test_feasible_with_reservations(self):
        inst = ReservationInstance.from_specs(
            4, [(3, 2), (2, 2), (1, 1)], [(1, 3, 2)]
        )
        for variant in ("nf", "ff"):
            s = shelf_schedule(inst, variant)
            s.verify()

    def test_rejects_release_times(self):
        inst = RigidInstance.from_specs(2, [(1, 1, 5)])
        with pytest.raises(SchedulingError):
            shelf_schedule(inst)

    def test_unknown_variant(self):
        inst = RigidInstance.from_specs(2, [(1, 1)])
        with pytest.raises(SchedulingError):
            shelf_schedule(inst, "zzz")

    def test_empty(self):
        inst = RigidInstance(m=2, jobs=())
        assert shelf_schedule(inst).makespan == 0

    def test_shelf_never_beats_lsrc_by_construction_gap(self):
        """Shelves are more rigid; on average LSRC should win or tie."""
        total_shelf = total_lsrc = 0
        for seed in range(20):
            inst = random_rigid(seed, n=10)
            total_shelf += FirstFitShelfScheduler().schedule(inst).makespan
            total_lsrc += ListScheduler("lpt").schedule(inst).makespan
        assert total_lsrc <= total_shelf


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_shelf_feasible_on_random(seed):
    inst = random_resa(seed)
    FirstFitShelfScheduler().schedule(inst).verify()
    NextFitShelfScheduler().schedule(inst).verify()
