"""Unit tests for instances (repro.core.instance)."""

from fractions import Fraction

import pytest

from repro.core import (
    Job,
    Reservation,
    ReservationInstance,
    RigidInstance,
    as_reservation_instance,
)
from repro.errors import (
    AlphaViolationError,
    InfeasibleInstanceError,
    InvalidInstanceError,
)


class TestRigidInstance:
    def test_aggregates(self, tiny_rigid):
        assert tiny_rigid.n == 4
        assert tiny_rigid.total_work == 3 * 2 + 2 * 1 + 4 * 2 + 1 * 4
        assert tiny_rigid.pmax == 4
        assert tiny_rigid.qmax == 4
        assert tiny_rigid.max_release == 0

    def test_job_lookup(self, tiny_rigid):
        assert tiny_rigid.job_by_id[2].p == 4

    def test_rejects_wide_job(self):
        with pytest.raises(InvalidInstanceError):
            RigidInstance(m=2, jobs=(Job(id=1, p=1, q=3),))

    def test_rejects_duplicate_ids(self):
        with pytest.raises(InvalidInstanceError):
            RigidInstance(m=2, jobs=(Job(id=1, p=1, q=1), Job(id=1, p=2, q=1)))

    def test_rejects_bad_machine_count(self):
        with pytest.raises(InvalidInstanceError):
            RigidInstance(m=0, jobs=())
        with pytest.raises(InvalidInstanceError):
            RigidInstance(m=2.5, jobs=())

    def test_with_jobs(self, tiny_rigid):
        smaller = tiny_rigid.with_jobs(tiny_rigid.jobs[:2])
        assert smaller.n == 2
        assert tiny_rigid.n == 4

    def test_scaled(self, tiny_rigid):
        doubled = tiny_rigid.scaled(2)
        assert doubled.pmax == 8
        assert doubled.total_work == 2 * tiny_rigid.total_work

    def test_to_reservation_instance(self, tiny_rigid):
        resa = tiny_rigid.to_reservation_instance()
        assert resa.n_reservations == 0
        assert resa.m == tiny_rigid.m

    def test_empty_instance_allowed(self):
        inst = RigidInstance(m=3, jobs=())
        assert inst.total_work == 0
        assert inst.pmax == 0


class TestReservationInstance:
    def test_basic(self, tiny_resa):
        assert tiny_resa.n == 4
        assert tiny_resa.n_reservations == 1
        assert tiny_resa.max_unavailability == 2
        assert tiny_resa.last_reservation_end == 4

    def test_unavailability_function(self, tiny_resa):
        assert tiny_resa.unavailability_at(0) == 0
        assert tiny_resa.unavailability_at(2) == 2
        assert tiny_resa.unavailability_at(3.9) == 2
        assert tiny_resa.unavailability_at(4) == 0

    def test_profile_is_a_copy(self, tiny_resa):
        p = tiny_resa.availability_profile()
        p.reserve(0, 1, 2)
        q = tiny_resa.availability_profile()
        assert q.capacity_at(0) == tiny_resa.m

    def test_infeasible_reservations_rejected(self):
        with pytest.raises(InfeasibleInstanceError):
            ReservationInstance.from_specs(
                2, [(1, 1)], [(0, 5, 1), (2, 2, 2)]
            )

    def test_too_wide_reservation_rejected(self):
        with pytest.raises(InfeasibleInstanceError):
            ReservationInstance.from_specs(2, [(1, 1)], [(0, 1, 3)])

    def test_exactly_full_reservations_are_feasible(self):
        inst = ReservationInstance.from_specs(2, [(1, 1)], [(0, 3, 2)])
        assert inst.unavailability_at(1) == 2

    def test_nonincreasing_detection(self):
        stair = ReservationInstance.from_specs(
            4, [(1, 1)], [(0, 10, 2), (0, 5, 1)]
        )
        assert stair.has_nonincreasing_reservations()
        bump = ReservationInstance.from_specs(4, [(1, 1)], [(3, 2, 1)])
        assert not bump.has_nonincreasing_reservations()

    def test_without_reservations(self, tiny_resa):
        rigid = tiny_resa.without_reservations()
        assert isinstance(rigid, RigidInstance)
        assert rigid.n == tiny_resa.n

    def test_scaled_preserves_structure(self, tiny_resa):
        big = tiny_resa.scaled(3)
        assert big.reservations[0].start == 6
        assert big.reservations[0].p == 6
        assert big.pmax == 12

    def test_duplicate_reservation_ids_rejected(self):
        with pytest.raises(InvalidInstanceError):
            ReservationInstance(
                m=4,
                jobs=(),
                reservations=(
                    Reservation(id="r", start=0, p=1, q=1),
                    Reservation(id="r", start=5, p=1, q=1),
                ),
            )


class TestAlphaRestrictions:
    def test_alpha_window(self, tiny_resa):
        # qmax = 4 = m -> min_alpha = 1; Umax = 2 -> max_alpha = 1/2
        assert tiny_resa.min_alpha == 1
        assert tiny_resa.max_alpha == Fraction(1, 2)
        assert tiny_resa.admissible_alpha is None

    def test_valid_alpha_instance(self):
        inst = ReservationInstance.from_specs(
            4, [(2, 2), (3, 1)], [(1, 2, 2)]
        )
        # qmax = 2 -> min 1/2; Umax = 2 -> max 1/2
        assert inst.is_alpha_restricted(Fraction(1, 2))
        inst.validate_alpha(Fraction(1, 2))
        assert inst.admissible_alpha == Fraction(1, 2)

    def test_alpha_out_of_range(self, tiny_resa):
        assert not tiny_resa.is_alpha_restricted(0)
        assert not tiny_resa.is_alpha_restricted(2)
        with pytest.raises(AlphaViolationError):
            tiny_resa.validate_alpha(0)

    def test_alpha_job_violation(self):
        inst = ReservationInstance.from_specs(4, [(1, 3)], [])
        with pytest.raises(AlphaViolationError) as err:
            inst.validate_alpha(Fraction(1, 2))
        assert "job" in str(err.value)

    def test_alpha_reservation_violation(self):
        inst = ReservationInstance.from_specs(4, [(1, 1)], [(0, 1, 3)])
        with pytest.raises(AlphaViolationError) as err:
            inst.validate_alpha(Fraction(1, 2))
        assert "reservations" in str(err.value)

    def test_no_reservations_allows_alpha_one(self):
        inst = ReservationInstance.from_specs(4, [(1, 4)], [])
        assert inst.is_alpha_restricted(1)
        assert inst.max_alpha == 1


class TestCoercion:
    def test_rigid_passes_through(self, tiny_rigid):
        resa = as_reservation_instance(tiny_rigid)
        assert isinstance(resa, ReservationInstance)
        assert resa.n_reservations == 0

    def test_resa_identity(self, tiny_resa):
        assert as_reservation_instance(tiny_resa) is tiny_resa

    def test_rejects_other_types(self):
        with pytest.raises(InvalidInstanceError):
            as_reservation_instance("not an instance")
