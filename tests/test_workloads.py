"""Tests for workload generators and SWF trace I/O."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ReservationInstance
from repro.errors import InvalidInstanceError, TraceFormatError
from repro.workloads import (
    SAMPLE_SWF,
    FeitelsonModel,
    alpha_constrained_instance,
    feitelson_instance,
    loguniform_instance,
    nonincreasing_staircase,
    periodic_maintenance,
    random_alpha_reservations,
    read_swf,
    reservation_load,
    small_exact_instance,
    uniform_instance,
    with_poisson_releases,
    write_swf,
)


class TestSyntheticGenerators:
    def test_uniform_shape(self):
        inst = uniform_instance(25, 16, seed=1)
        assert inst.n == 25
        assert all(1 <= j.q <= 16 for j in inst.jobs)
        assert all(1 <= j.p <= 100 for j in inst.jobs)

    def test_uniform_deterministic(self):
        a = uniform_instance(10, 8, seed=42)
        b = uniform_instance(10, 8, seed=42)
        assert [(j.p, j.q) for j in a.jobs] == [(j.p, j.q) for j in b.jobs]

    def test_uniform_seed_matters(self):
        a = uniform_instance(10, 8, seed=1)
        b = uniform_instance(10, 8, seed=2)
        assert [(j.p, j.q) for j in a.jobs] != [(j.p, j.q) for j in b.jobs]

    def test_uniform_validation(self):
        with pytest.raises(InvalidInstanceError):
            uniform_instance(5, 4, q_range=(0, 2))
        with pytest.raises(InvalidInstanceError):
            uniform_instance(5, 4, q_range=(3, 8))
        with pytest.raises(InvalidInstanceError):
            uniform_instance(5, 4, p_range=(0, 2))

    def test_loguniform_tail(self):
        inst = loguniform_instance(200, 32, p_max=1000, seed=3)
        ps = sorted(j.p for j in inst.jobs)
        # heavy tail: the max should far exceed the median
        assert ps[-1] > 5 * ps[len(ps) // 2]

    def test_alpha_constrained_respects_cap(self):
        for alpha in (0.25, 0.5, 0.75):
            inst = alpha_constrained_instance(50, 16, alpha, seed=4)
            assert all(j.q <= alpha * 16 for j in inst.jobs)

    def test_alpha_too_small(self):
        with pytest.raises(InvalidInstanceError):
            alpha_constrained_instance(5, 4, 0.1)

    def test_poisson_releases_increasing(self):
        base = uniform_instance(20, 8, seed=5)
        timed = with_poisson_releases(base, rate=0.5, seed=6)
        rels = [j.release for j in timed.jobs]
        assert all(a < b for a, b in zip(rels, rels[1:]))
        assert all(r > 0 for r in rels)

    def test_small_exact_guard(self):
        with pytest.raises(InvalidInstanceError):
            small_exact_instance(9, 4)
        inst = small_exact_instance(5, 4, seed=7)
        assert inst.n == 5


class TestFeitelsonModel:
    def test_widths_within_machine(self):
        inst = feitelson_instance(300, 64, seed=1)
        assert all(1 <= j.q <= 64 for j in inst.jobs)

    def test_serial_fraction_roughly_respected(self):
        model = FeitelsonModel(64, serial_probability=0.3)
        inst = model.instance(500, seed=2)
        serial = sum(1 for j in inst.jobs if j.q == 1)
        assert 0.15 < serial / 500 < 0.55  # includes pow2-snap to 1

    def test_pow2_bias(self):
        inst = feitelson_instance(500, 64, seed=3)
        pow2 = sum(
            1 for j in inst.jobs if j.q & (j.q - 1) == 0
        )
        assert pow2 / 500 > 0.6

    def test_wide_jobs_run_longer_on_average(self):
        model = FeitelsonModel(64, correlation=1.0)
        inst = model.instance(800, seed=4)
        wide = [j.p for j in inst.jobs if j.q >= 32]
        narrow = [j.p for j in inst.jobs if j.q == 1]
        assert wide and narrow
        assert sum(wide) / len(wide) > sum(narrow) / len(narrow)

    def test_arrivals(self):
        inst = feitelson_instance(50, 16, seed=5, arrival_rate=1.0)
        rels = [j.release for j in inst.jobs]
        assert all(a < b for a, b in zip(rels, rels[1:]))

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            FeitelsonModel(0)
        with pytest.raises(InvalidInstanceError):
            FeitelsonModel(4, pow2_probability=2.0)
        with pytest.raises(InvalidInstanceError):
            FeitelsonModel(4, short_mean=0)


class TestReservationGenerators:
    def test_periodic(self):
        res = periodic_maintenance(16, 4, period=100, duration=10, count=5)
        assert len(res) == 5
        starts = [r.start for r in res]
        assert starts == [0, 100, 200, 300, 400]
        ReservationInstance(m=16, jobs=(), reservations=res)  # feasible

    def test_periodic_overlap_rejected(self):
        with pytest.raises(InvalidInstanceError):
            periodic_maintenance(16, 4, period=5, duration=10, count=3)

    def test_random_alpha_respects_budget(self):
        for alpha in (0.25, 0.5, 0.75):
            res = random_alpha_reservations(
                16, alpha, horizon=100, count=20, seed=8
            )
            inst = ReservationInstance(m=16, jobs=(), reservations=res)
            assert inst.max_unavailability <= (1 - alpha) * 16

    def test_random_alpha_budgetless(self):
        assert random_alpha_reservations(4, 1, horizon=10, count=5) == ()

    def test_staircase_is_nonincreasing(self):
        for seed in range(6):
            res = nonincreasing_staircase(16, 4, seed=seed)
            inst = ReservationInstance(m=16, jobs=(), reservations=res)
            assert inst.has_nonincreasing_reservations()
            assert inst.max_unavailability <= 0.75 * 16

    def test_staircase_empty(self):
        assert nonincreasing_staircase(16, 0) == ()

    def test_reservation_load(self):
        res = periodic_maintenance(10, 5, period=10, duration=10, count=1)
        assert reservation_load(res, 10, 10) == 0.5
        assert reservation_load(res, 10, 20) == 0.25
        with pytest.raises(InvalidInstanceError):
            reservation_load(res, 10, 0)


class TestSWF:
    def test_sample_parses(self):
        report = read_swf(SAMPLE_SWF)
        assert report.instance.m == 32
        assert report.instance.n == 8
        assert not report.skipped
        assert any("MaxProcs" in h for h in report.header)

    def test_release_normalised_to_zero(self):
        report = read_swf(SAMPLE_SWF)
        assert min(j.release for j in report.instance.jobs) == 0

    def test_offline_flattening(self):
        report = read_swf(SAMPLE_SWF, use_release=False)
        assert all(j.release == 0 for j in report.instance.jobs)

    def test_max_jobs(self):
        report = read_swf(SAMPLE_SWF, max_jobs=3)
        assert report.instance.n == 3

    def test_roundtrip(self):
        original = read_swf(SAMPLE_SWF).instance
        text = write_swf(original)
        again = read_swf(text).instance
        assert again.n == original.n
        assert again.m == original.m
        a = sorted((j.p, j.q, j.release) for j in original.jobs)
        b = sorted((j.p, j.q, j.release) for j in again.jobs)
        assert a == b

    def test_fallback_to_requested_fields(self):
        text = "; MaxProcs: 8\n1 0 0 -1 -1 -1 -1 4 25 -1 1 1 1 1 1 -1 -1 -1\n"
        report = read_swf(text)
        job = report.instance.jobs[0]
        assert job.p == 25 and job.q == 4

    def test_unusable_rows_skipped(self):
        text = (
            "; MaxProcs: 8\n"
            "1 0 0 -1 -1 -1 -1 -1 -1 -1 1 1 1 1 1 -1 -1 -1\n"
            "2 0 0 10 2 -1 -1 2 12 -1 1 1 1 1 1 -1 -1 -1\n"
        )
        report = read_swf(text)
        assert report.instance.n == 1
        assert report.skipped

    def test_width_clipped_to_machine(self):
        text = "1 0 0 10 64 -1 -1 64 12 -1 1 1 1 1 1 -1 -1 -1\n"
        report = read_swf(text, m=8)
        assert report.instance.jobs[0].q == 8
        assert report.skipped

    def test_empty_raises(self):
        with pytest.raises(TraceFormatError):
            read_swf("; just a comment\n")

    def test_malformed_number_skipped(self):
        text = (
            "x y z w v\n"
            "2 0 0 10 2 -1 -1 2 12 -1 1 1 1 1 1 -1 -1 -1\n"
        )
        report = read_swf(text)
        assert report.instance.n == 1

    def test_file_object_input(self):
        report = read_swf(io.StringIO(SAMPLE_SWF))
        assert report.instance.n == 8

    def test_write_to_target(self):
        inst = read_swf(SAMPLE_SWF).instance
        buf = io.StringIO()
        text = write_swf(inst, buf)
        assert buf.getvalue() == text


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    m=st.sampled_from([2, 8, 32]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_generators_always_valid_instances(n, m, seed):
    """Every generator yields instances that pass model validation and can
    be scheduled."""
    from repro.algorithms import list_schedule

    for inst in (
        uniform_instance(n, m, seed=seed),
        loguniform_instance(n, m, seed=seed),
        feitelson_instance(n, m, seed=seed),
    ):
        s = list_schedule(inst)
        s.verify()
