"""Tests for FCFS and backfilling policies (Section 2.2's spectrum)."""

from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FCFSScheduler,
    ListScheduler,
    conservative_backfill,
    easy_backfill,
    fcfs_schedule,
)
from repro.core import ReservationInstance, RigidInstance

from conftest import random_resa, random_rigid


class TestFCFS:
    def test_no_overtaking(self):
        """A wide head job blocks narrow later jobs (the FCFS pathology)."""
        inst = RigidInstance.from_specs(2, [(2, 2), (1, 1), (1, 1)])
        s = fcfs_schedule(inst)
        s.verify()
        assert s.starts[0] == 0
        # narrow jobs wait behind nothing (wide started first), then fill
        assert s.starts[1] == 2 and s.starts[2] == 2
        assert s.makespan == 3

    def test_head_blocks_queue(self):
        # order: narrow long, wide, narrow: wide blocks the final narrow
        inst = RigidInstance.from_specs(2, [(4, 1), (1, 2), (1, 1)])
        s = fcfs_schedule(inst)
        s.verify()
        assert s.starts[0] == 0
        assert s.starts[1] == 4  # wide waits for the narrow long
        assert s.starts[2] >= s.starts[1]  # no overtaking

    def test_start_times_nondecreasing_in_queue_order(self):
        inst = random_rigid(3, n=10)
        s = fcfs_schedule(inst)
        starts = [s.starts[j.id] for j in inst.jobs]
        assert all(a <= b for a, b in zip(starts, starts[1:]))

    def test_fcfs_worse_than_lsrc_on_pathological_instance(self):
        inst = RigidInstance.from_specs(
            4, [(1, 4), (5, 1), (1, 4), (5, 1)]
        )
        fc = fcfs_schedule(inst)
        ls = ListScheduler().schedule(inst)
        assert fc.makespan >= ls.makespan

    def test_respects_releases(self):
        inst = RigidInstance.from_specs(2, [(1, 1, 3), (1, 1)])
        s = fcfs_schedule(inst)
        s.verify()
        # release order puts job 1 (release 0) first
        assert s.starts[1] == 0
        assert s.starts[0] == 3

    def test_reservation_gap_not_backfilled(self):
        # FCFS head waits for the reservation; the short job behind it
        # could fit in the gap but FCFS must NOT backfill it
        inst = ReservationInstance.from_specs(
            1, [(3, 1), (2, 1)], [(2, 1, 1)]
        )
        s = fcfs_schedule(inst)
        s.verify()
        assert s.starts[0] == 3   # head: after the reservation
        assert s.starts[1] == 6   # no overtaking: gap [0,2) stays empty
        ls = ListScheduler().schedule(inst)
        assert ls.makespan < s.makespan  # LSRC uses the gap


class TestConservativeBackfill:
    def test_backfills_into_gap_without_delaying(self):
        inst = ReservationInstance.from_specs(
            1, [(3, 1), (2, 1)], [(2, 1, 1)]
        )
        s = conservative_backfill(inst)
        s.verify()
        # job 0 placed first at its earliest fit (3); job 1 then slides
        # into the [0, 2) gap without delaying job 0
        assert s.starts[0] == 3
        assert s.starts[1] == 0
        assert s.makespan == 6

    def test_earlier_jobs_never_delayed(self):
        """Placement of job j never moves jobs < j (prefix stability)."""
        inst = random_resa(21, n=8)
        jobs = list(inst.jobs)
        prefix_starts = None
        for upto in range(1, len(jobs) + 1):
            sub = inst.with_jobs(jobs[:upto])
            s = conservative_backfill(sub)
            if prefix_starts is not None:
                for j in jobs[: upto - 1]:
                    assert s.starts[j.id] == prefix_starts[j.id]
            prefix_starts = s.starts

    def test_feasible_on_random(self):
        for seed in range(10):
            s = conservative_backfill(random_resa(seed))
            s.verify()


class TestEasyBackfill:
    def test_head_never_delayed_by_backfill(self):
        # head is wide; a narrow long job must NOT backfill past the
        # head's earliest start, but a narrow short one may
        inst = RigidInstance.from_specs(
            2, [(2, 1), (2, 2), (10, 1), (2, 1)]
        )
        s = easy_backfill(inst)
        s.verify()
        assert s.starts[0] == 0
        # head (job 1, q=2) can start at 2; the 10-long narrow job would
        # push it to 10 if backfilled at 0 on the second processor
        assert s.starts[1] == 2
        assert s.starts[2] >= 2  # long narrow did not jump the queue
        assert s.starts[3] == 0  # short narrow fits before the head

    def test_easy_between_fcfs_and_lsrc_here(self):
        inst = ReservationInstance.from_specs(
            1, [(3, 1), (2, 1)], [(2, 1, 1)]
        )
        easy = easy_backfill(inst)
        easy.verify()
        fc = fcfs_schedule(inst)
        assert easy.makespan <= fc.makespan

    def test_feasible_on_random(self):
        for seed in range(10):
            s = easy_backfill(random_resa(seed))
            s.verify()

    def test_with_releases(self):
        inst = RigidInstance.from_specs(
            2, [(2, 2, 0), (1, 1, 1), (3, 1, 1)]
        )
        s = easy_backfill(inst)
        s.verify()
        for job in inst.jobs:
            assert s.starts[job.id] >= job.release


class TestPolicyOrdering:
    """The classic dominance pattern on random workloads: aggressive
    backfilling (LSRC) tends to beat conservative, which tends to beat
    pure FCFS — not a theorem instance-by-instance, so compare averages."""

    def test_average_makespans_ordered(self):
        totals = {"lsrc": 0, "cons": 0, "fcfs": 0}
        for seed in range(30):
            inst = random_rigid(seed, n=12)
            totals["lsrc"] += ListScheduler().schedule(inst).makespan
            totals["cons"] += conservative_backfill(inst).makespan
            totals["fcfs"] += fcfs_schedule(inst).makespan
        assert totals["lsrc"] <= totals["cons"] <= totals["fcfs"]


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_all_policies_feasible(seed):
    inst = random_resa(seed)
    for scheduler in (
        FCFSScheduler(),
        ConservativeBackfillScheduler(),
        EasyBackfillScheduler(),
    ):
        scheduler.schedule(inst).verify()
