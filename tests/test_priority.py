"""Dedicated tests for the priority-rule module."""

import pytest

from repro.algorithms.priority import (
    RULES,
    explicit_order,
    fifo,
    get_rule,
    laf,
    lpt,
    narrowest,
    random_order,
    saf,
    spt,
    widest,
)
from repro.core import Job
from repro.errors import SchedulingError

JOBS = (
    Job(id="a", p=5, q=2),
    Job(id="b", p=2, q=4),
    Job(id="c", p=5, q=1),
    Job(id="d", p=1, q=3, release=2),
)


class TestOrderings:
    def test_fifo_by_release_then_stable(self):
        order = [j.id for j in fifo(JOBS)]
        assert order == ["a", "b", "c", "d"]  # d released later

    def test_lpt_decreasing_p(self):
        ps = [j.p for j in lpt(JOBS)]
        assert ps == sorted(ps, reverse=True)

    def test_lpt_tie_break_deterministic(self):
        order = [j.id for j in lpt(JOBS)]
        # p=5 tie between a and c broken by id string
        assert order.index("a") < order.index("c")

    def test_spt_increasing_p(self):
        ps = [j.p for j in spt(JOBS)]
        assert ps == sorted(ps)

    def test_laf_decreasing_area(self):
        areas = [j.p * j.q for j in laf(JOBS)]
        assert areas == sorted(areas, reverse=True)

    def test_saf_increasing_area(self):
        areas = [j.p * j.q for j in saf(JOBS)]
        assert areas == sorted(areas)

    def test_widest_and_narrowest(self):
        assert [j.q for j in widest(JOBS)] == [4, 3, 2, 1]
        assert [j.q for j in narrowest(JOBS)] == [1, 2, 3, 4]

    def test_rules_do_not_mutate_input(self):
        original = list(JOBS)
        lpt(JOBS)
        assert list(JOBS) == original

    def test_all_rules_are_permutations(self):
        for name, rule in RULES.items():
            out = rule(JOBS)
            assert sorted(str(j.id) for j in out) == sorted(
                str(j.id) for j in JOBS
            ), name


class TestRandomAndExplicit:
    def test_random_order_seeded(self):
        rule = random_order(7)
        a = [j.id for j in rule(JOBS)]
        b = [j.id for j in rule(JOBS)]
        assert a == b  # same rule object, same seed, same shuffle

    def test_random_order_different_seeds(self):
        a = [j.id for j in random_order(1)(JOBS)]
        b = [j.id for j in random_order(2)(JOBS)]
        # with 4 jobs there is a small chance of equality; these seeds differ
        assert a != b

    def test_explicit_order(self):
        rule = explicit_order(["c", "a"])
        order = [j.id for j in rule(JOBS)]
        assert order[:2] == ["c", "a"]
        # remaining jobs follow in id order
        assert order[2:] == ["b", "d"]

    def test_explicit_order_name(self):
        assert "2 ids" in explicit_order(["a", "b"]).__name__


class TestLookup:
    def test_get_rule_known(self):
        assert get_rule("lpt") is lpt

    def test_get_rule_random_with_seed(self):
        rule = get_rule("random:9")
        assert "seed=9" in rule.__name__

    def test_get_rule_random_default(self):
        assert "seed=0" in get_rule("random").__name__

    def test_get_rule_unknown(self):
        with pytest.raises(SchedulingError):
            get_rule("alphabetical")
