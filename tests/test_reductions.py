"""Tests for the paper's reductions (Theorem 1 / Figure 1, Proposition 1 /
Figure 2) run end to end."""

import pytest

from repro.algorithms import (
    ListScheduler,
    branch_and_bound,
    exhaustive_optimal,
    optimal_makespan_m1,
)
from repro.algorithms.priority import explicit_order
from repro.core import ReservationInstance, RigidInstance, Schedule
from repro.errors import InvalidInstanceError
from repro.theory import (
    blocked_horizon,
    deadline_reservation_reduction,
    proposition1_certify,
    random_no_3partition,
    random_yes_3partition,
    reduction_yes_makespan,
    reservations_to_head_jobs,
    schedule_solves_3partition,
    solve_3partition,
    three_partition_reduction,
    truncate_availability,
)
from repro.workloads import nonincreasing_staircase, uniform_instance


class TestThreePartitionReduction:
    def test_structure(self):
        vals, B = random_yes_3partition(2, 40, seed=0)
        inst = three_partition_reduction(vals, B, rho=3)
        assert inst.m == 1
        assert inst.n == 6
        assert inst.n_reservations == 2
        # gaps of exactly B between reservations
        r1, r2 = sorted(inst.reservations, key=lambda r: r.start)
        assert r1.start == B
        assert r2.start == r1.end + B
        # last reservation ends at (rho+1) k (B+1)
        assert r2.end == blocked_horizon(2, B, 3)

    def test_yes_instance_achieves_target(self):
        """Yes 3-PARTITION <=> schedule with Cmax = k(B+1) - 1 (forward)."""
        for seed in range(4):
            vals, B = random_yes_3partition(2, 40, seed=seed)
            inst = three_partition_reduction(vals, B)
            target = reduction_yes_makespan(2, B)
            assert optimal_makespan_m1(inst) == target

    def test_no_instance_overflows_past_blocker(self):
        """No 3-PARTITION => every schedule crosses the huge reservation."""
        vals, B = random_no_3partition(2, 40, seed=1)
        rho = 2
        inst = three_partition_reduction(vals, B, rho=rho)
        opt = optimal_makespan_m1(inst)
        assert opt > reduction_yes_makespan(2, B)
        # the overflow lands beyond the blocker's end => ratio >= rho-ish
        assert opt > blocked_horizon(2, B, rho)

    def test_certificate_extraction(self):
        """The converse direction: a target-makespan schedule encodes a
        3-PARTITION solution."""
        vals, B = random_yes_3partition(2, 40, seed=3)
        inst = three_partition_reduction(vals, B)
        # build the schedule from the known partition
        groups = solve_3partition(vals, B)
        remaining = {i: v for i, v in enumerate(vals)}
        starts = {}
        cursor_base = 0
        for g_idx, group in enumerate(groups):
            cursor = g_idx * (B + 1)
            for value in group:
                jid = next(i for i, v in remaining.items() if v == value)
                del remaining[jid]
                starts[jid] = cursor
                cursor += value
        sched = Schedule(inst, starts)
        sched.verify()
        assert sched.makespan == reduction_yes_makespan(2, B)
        extracted = schedule_solves_3partition(sched, vals, B)
        assert extracted is not None
        for triple in extracted:
            assert sum(triple) == B

    def test_extraction_rejects_bad_schedule(self):
        vals, B = random_yes_3partition(2, 40, seed=5)
        inst = three_partition_reduction(vals, B)
        # conservative sequential placement in input order generally misses
        # the target; extraction must then return None
        s = ListScheduler().schedule(inst)
        if s.makespan > reduction_yes_makespan(2, B):
            assert schedule_solves_3partition(s, vals, B) is None

    def test_input_validation(self):
        with pytest.raises(InvalidInstanceError):
            three_partition_reduction([1, 2], 3)
        with pytest.raises(InvalidInstanceError):
            three_partition_reduction([1, 1, 1], 5)  # sum mismatch
        with pytest.raises(InvalidInstanceError):
            three_partition_reduction([1, 1, 1], 3, rho=0)


class TestDeadlineReduction:
    def test_harmless_when_deadline_feasible(self):
        rigid = RigidInstance.from_specs(2, [(2, 1), (2, 1), (2, 2)])
        cstar = exhaustive_optimal(rigid).makespan  # = 4
        inst = deadline_reservation_reduction(rigid, cstar, rho=2)
        assert branch_and_bound(inst).makespan == cstar

    def test_overflow_when_deadline_infeasible(self):
        rigid = RigidInstance.from_specs(2, [(2, 1), (2, 1), (2, 2)])
        cstar = exhaustive_optimal(rigid).makespan
        deadline = cstar - 1
        inst = deadline_reservation_reduction(rigid, deadline, rho=2)
        opt = branch_and_bound(inst).makespan
        # pushed past the blocker: (rho+1)*deadline + 1 at least
        assert opt > (2 + 1) * deadline

    def test_validation(self):
        rigid = RigidInstance.from_specs(2, [(1, 1)])
        with pytest.raises(InvalidInstanceError):
            deadline_reservation_reduction(rigid, 0)


class TestNonincreasingTransform:
    def _staircase_instance(self, seed):
        jobs = uniform_instance(6, 8, p_range=(1, 6), q_range=(1, 4), seed=seed).jobs
        stairs = nonincreasing_staircase(8, 3, horizon=12, seed=seed)
        return ReservationInstance(m=8, jobs=jobs, reservations=stairs)

    def test_truncate_preserves_prefix(self):
        inst = self._staircase_instance(2)
        horizon = 5
        trunc = truncate_availability(inst, horizon)
        orig = inst.availability_profile()
        new = trunc.availability_profile()
        for t in [0, 1, 2, 3, 4, 4.5]:
            assert new.capacity_at(t) == orig.capacity_at(t)
        # beyond the horizon: frozen at the horizon's capacity
        assert new.capacity_at(100) == orig.capacity_at(horizon)

    def test_truncate_requires_nonincreasing(self):
        inst = ReservationInstance.from_specs(4, [(1, 1)], [(3, 2, 1)])
        with pytest.raises(InvalidInstanceError):
            truncate_availability(inst, 5)

    def test_head_jobs_rebuild_staircase(self):
        inst = self._staircase_instance(4)
        profile = inst.availability_profile()
        horizon = max(6, profile.earliest_fit(inst.qmax, 1))
        transform = reservations_to_head_jobs(inst, horizon)
        rigid = transform.rigid
        # machine size is m(horizon)
        m_prime = inst.availability_profile().truncated_after(horizon).final_capacity()
        assert rigid.m == m_prime
        # scheduling the head jobs first at time 0 leaves exactly the
        # truncated availability for the real jobs
        order = transform.list_order()
        sched = ListScheduler(explicit_order(order)).schedule(rigid)
        for hid in transform.head_ids:
            assert sched.starts[hid] == 0

    def test_lsrc_identical_on_i_prime_and_i_double_prime(self):
        """The structural heart of Proposition 1's proof."""
        for seed in range(6):
            inst = self._staircase_instance(seed)
            # pick a horizon at which the widest job fits (in the proof the
            # horizon is C*max, which always satisfies this)
            profile = inst.availability_profile()
            horizon = max(5, profile.earliest_fit(inst.qmax, 1))
            i_prime = truncate_availability(inst, horizon)
            s1 = ListScheduler().schedule(i_prime)
            transform = reservations_to_head_jobs(inst, horizon)
            s2 = ListScheduler(
                explicit_order(transform.list_order())
            ).schedule(transform.rigid)
            for job in inst.jobs:
                assert s2.starts[job.id] == s1.starts[job.id], (
                    f"seed {seed}, job {job.id}"
                )

    def test_proposition1_certificate(self):
        """Full Proposition 1 check against the exact optimum."""
        for seed in (0, 3):
            jobs = uniform_instance(
                5, 8, p_range=(1, 5), q_range=(1, 4), seed=seed
            ).jobs
            stairs = nonincreasing_staircase(8, 2, horizon=10, seed=seed)
            inst = ReservationInstance(m=8, jobs=jobs, reservations=stairs)
            cstar = branch_and_bound(inst).makespan
            cert = proposition1_certify(inst, cstar)
            assert cert.holds, f"seed {seed}: {cert}"
            assert cert.ratio <= cert.guarantee
