"""Shared fixtures and reference implementations for the test suite.

The reference implementations here are deliberately naive (dictionaries
of sampled times, quadratic scans) so they share no code — and therefore
no bugs — with the production data structures they validate.
"""

from __future__ import annotations

import random

import pytest

from repro.core import Job, Reservation, ReservationInstance, RigidInstance


# ---------------------------------------------------------------------------
# reference (naive) capacity model
# ---------------------------------------------------------------------------

class NaiveCapacity:
    """Capacity over time as an explicit list of (start, end, amount) holds.

    Query cost is O(holds); used to cross-check ResourceProfile.
    """

    def __init__(self, m: int):
        self.m = m
        self.holds = []  # (start, end, amount)

    def reserve(self, start, duration, amount):
        self.holds.append((start, start + duration, amount))

    def release(self, start, duration, amount):
        self.holds.append((start, start + duration, -amount))

    def capacity_at(self, t):
        used = sum(a for (s, e, a) in self.holds if s <= t < e)
        return self.m - used

    def min_capacity(self, start, end):
        # capacity changes only at hold boundaries: sample each boundary in
        # [start, end) plus start itself
        points = {start}
        for s, e, _ in self.holds:
            if start < s < end:
                points.add(s)
            if start < e < end:
                points.add(e)
        return min(self.capacity_at(p) for p in points)

    def earliest_fit(self, q, duration, after=0):
        # candidate starts: `after` and every hold boundary after it
        points = {after}
        for s, e, _ in self.holds:
            if s > after:
                points.add(s)
            if e > after:
                points.add(e)
        for p in sorted(points):
            if self.min_capacity(p, p + duration) >= q:
                return p
        return None  # pragma: no cover - capacity returns to m eventually


@pytest.fixture
def naive_capacity():
    return NaiveCapacity


# ---------------------------------------------------------------------------
# canonical small instances
# ---------------------------------------------------------------------------

@pytest.fixture
def tiny_rigid() -> RigidInstance:
    """4 machines, 4 jobs; optimal makespan is 5 (hand-checkable)."""
    return RigidInstance.from_specs(
        4, [(3, 2), (2, 1), (4, 2), (1, 4)], name="tiny"
    )


@pytest.fixture
def tiny_resa() -> ReservationInstance:
    """The tiny instance plus a 2-wide reservation on [2, 4)."""
    return ReservationInstance.from_specs(
        4, [(3, 2), (2, 1), (4, 2), (1, 4)], [(2, 2, 2)], name="tiny+res"
    )


@pytest.fixture
def single_machine_holes() -> ReservationInstance:
    """m = 1 with two unit holes — the Figure 1 shape in miniature."""
    return ReservationInstance.from_specs(
        1,
        [(2, 1), (1, 1), (3, 1)],
        [(3, 1, 1), (7, 1, 1)],
        name="m1-holes",
    )


def random_rigid(seed: int, n=None, m=None) -> RigidInstance:
    """Seeded random rigid instance for property-style loops in tests."""
    rng = random.Random(seed)
    m = m or rng.choice([2, 3, 4, 8, 16])
    n = n or rng.randint(1, 12)
    jobs = [
        Job(id=i, p=rng.randint(1, 9), q=rng.randint(1, m)) for i in range(n)
    ]
    return RigidInstance(m=m, jobs=tuple(jobs), name=f"rand{seed}")


def random_resa(seed: int, n=None, m=None, n_res=None) -> ReservationInstance:
    """Seeded random instance with feasible, α-compatible reservations.

    Reservation widths stay at most ``m - qmax`` over any overlap by
    admitting candidates against a budget profile, mirroring (in a
    simplified way) how production systems cap the reservation feature.
    """
    from repro.core import ResourceProfile

    rng = random.Random(seed + 10_000)
    m = m or rng.choice([2, 4, 8, 16])
    n = n or rng.randint(1, 10)
    jobs = [
        Job(id=i, p=rng.randint(1, 9), q=rng.randint(1, max(1, m // 2)))
        for i in range(n)
    ]
    qmax = max(j.q for j in jobs)
    budget = m - qmax
    reservations = []
    if budget >= 1:
        room = ResourceProfile.constant(budget)
        n_res = n_res if n_res is not None else rng.randint(0, 4)
        for r in range(n_res):
            start = rng.randint(0, 30)
            dur = rng.randint(1, 10)
            avail = room.min_capacity(start, start + dur)
            if avail < 1:
                continue
            q = rng.randint(1, avail)
            room.reserve(start, dur, q)
            reservations.append(Reservation(id=f"r{r}", start=start, p=dur, q=q))
    return ReservationInstance(
        m=m, jobs=tuple(jobs), reservations=tuple(reservations),
        name=f"randres{seed}",
    )
