"""The ``repro serve`` daemon: wire format, service semantics, crash safety.

Three layers, tested separately and then together:

* :mod:`repro.serve.api` — every ``make_*`` builder must round-trip
  through :func:`parse_request` (the builders and the validator are two
  halves of one ``repro-serve/1`` contract), and the response envelopes
  must reconstruct on the client side.
* :class:`SchedulerService` — the transport-free op layer: op
  application, the journal's apply → journal → ack ordering, snapshot +
  op-replay recovery byte-identity, and the serve/replay journal
  mode wall.
* The HTTP daemon — an end-to-end subprocess session, then the kill
  matrix: SIGKILL the daemon at every serve-path failpoint mid-stream,
  restart with ``--resume``, have the client retry its unacked op, and
  assert the recovered ``/v1/state`` body is byte-identical to an
  uninterrupted session's.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.core.job import Job
from repro.devtools import failpoints
from repro.durability import Journal
from repro.errors import SchedulingError, ServeError, ServeProtocolError
from repro.serve import SchedulerService, ServeDaemon
from repro.serve.api import (
    MUTATING_OPS,
    OPS as ALL_OPS,
    SERVE_FORMAT,
    error_envelope,
    error_kind,
    job_from_payload,
    make_advance,
    make_cancel,
    make_drain,
    make_query,
    make_reserve,
    make_submit,
    ok_envelope,
    parse_request,
    raise_for_envelope,
)
from repro.simulation import SchedulerCore

SRC_ROOT = Path(repro.__file__).resolve().parents[1]

M = 16
WINDOW = 4
SNAP = 4  # snapshot every 4 accepted ops: several snapshots mid-stream


def session_ops():
    """One deterministic client session: submits, a queued cancel, a
    staged cancel, advances, drain — 16 mutating ops, every one valid
    against a fresh ``m=16`` core."""
    return [
        make_submit("a0", 10, 16, 0),   # hogs the whole machine until 10
        make_submit("a1", 3, 2, 0),     # queued behind a0
        make_submit("a2", 4, 8, 0),
        make_advance(2),
        make_cancel("a1"),              # cancelled while queued
        make_submit("a3", 5, 4, 2),
        make_cancel("a3"),              # cancelled while still staged
        make_submit("a4", 6, 4, 4),
        make_advance(6),
        make_submit("a5", 2, 2, 8),
        make_submit("a6", 7, 12, 9),
        make_advance(12),
        make_submit("a7", 3, 3, 14),
        make_advance(20),
        make_advance(40),
        make_drain(),
    ]


@pytest.fixture(autouse=True)
def _reset_failpoints():
    failpoints.reset()
    yield
    failpoints.reset()


# ---------------------------------------------------------------------------
# repro-serve/1 wire format (satellite: versioned client API)
# ---------------------------------------------------------------------------


class TestApiRoundTrip:
    def test_submit_round_trips_to_job(self):
        body = make_submit("j1", 5, 2, 10, name="batch")
        op, parsed = parse_request(body)
        assert op == "submit"
        job = job_from_payload(parsed["job"])
        assert job == Job(id="j1", p=5, q=2, release=10, name="batch")

    def test_every_builder_parses(self):
        for body in (
            make_submit("j", 1, 1, 0),
            make_cancel("j"),
            make_advance(7),
            make_reserve(5, 3, 2),
            make_drain(),
            make_query("status"),
            make_query("windows"),
            make_query("state"),
            make_query("shutdown"),
        ):
            op, _ = parse_request(body)
            assert op in ALL_OPS

    def test_integral_floats_normalise_to_int(self):
        # a sloppy JSON client sending 10.0 must not demote the int grid
        op, parsed = parse_request(
            {"format": SERVE_FORMAT, "op": "submit",
             "job": {"id": "j", "p": 5.0, "q": 2.0, "release": 10.0}}
        )
        job = job_from_payload(parsed["job"])
        assert (job.p, job.q, job.release) == (5, 2, 10)
        assert all(
            type(v) is int for v in (job.p, job.q, job.release)
        )

    def test_non_integral_float_survives(self):
        _, parsed = parse_request(make_advance(2.5))
        assert parsed["to"] == 2.5

    def test_query_builder_rejects_mutating_ops(self):
        with pytest.raises(ServeProtocolError):
            make_query("submit")
        with pytest.raises(ServeProtocolError):
            make_query("nonsense")

    @pytest.mark.parametrize(
        "body",
        [
            "not an object",
            {},
            {"format": "repro-serve/2", "op": "status"},
            {"format": SERVE_FORMAT, "op": "frobnicate"},
            {"format": SERVE_FORMAT, "op": "submit"},
            {"format": SERVE_FORMAT, "op": "submit", "job": "j1"},
            {"format": SERVE_FORMAT, "op": "submit",
             "job": {"id": "j", "p": 1, "q": 1, "release": 0, "prio": 9}},
            {"format": SERVE_FORMAT, "op": "submit",
             "job": {"id": "j", "p": 1, "q": 1}},
            {"format": SERVE_FORMAT, "op": "submit",
             "job": {"id": "j", "p": "fast", "q": 1, "release": 0}},
            {"format": SERVE_FORMAT, "op": "submit",
             "job": {"id": "j", "p": True, "q": 1, "release": 0}},
            {"format": SERVE_FORMAT, "op": "submit",
             "job": {"id": "j", "p": 1, "q": 1, "release": 0, "name": 3}},
            {"format": SERVE_FORMAT, "op": "cancel"},
            {"format": SERVE_FORMAT, "op": "advance"},
            {"format": SERVE_FORMAT, "op": "reserve", "start": 0, "p": 1},
        ],
        ids=lambda b: b if isinstance(b, str) else (b.get("op") or "untagged"),
    )
    def test_malformed_requests_reject(self, body):
        with pytest.raises(ServeProtocolError):
            parse_request(body)

    def test_ops_catalog_is_consistent(self):
        assert set(MUTATING_OPS) < set(ALL_OPS)
        assert len(ALL_OPS) == len(set(ALL_OPS))


class TestEnvelopes:
    def test_ok_round_trip(self):
        assert raise_for_envelope(ok_envelope({"x": 1})) == {"x": 1}
        assert raise_for_envelope(ok_envelope()) == {}

    def test_error_kinds(self):
        assert error_kind(ServeProtocolError("x")) == "protocol"
        assert error_kind(SchedulingError("x")) == "scheduling"
        assert error_kind(ValueError("x")) == "internal"

    def test_error_envelope_reconstructs(self):
        env = error_envelope(SchedulingError("job 'j' is already live"))
        assert env["ok"] is False
        assert env["error"]["type"] == "SchedulingError"
        with pytest.raises(ServeError, match="already live"):
            raise_for_envelope(env)

    def test_protocol_errors_reconstruct_as_protocol(self):
        env = error_envelope(ServeProtocolError("bad request"))
        with pytest.raises(ServeProtocolError, match="bad request"):
            raise_for_envelope(env)

    def test_untagged_response_rejects(self):
        with pytest.raises(ServeProtocolError):
            raise_for_envelope({"ok": True, "result": {}})


# ---------------------------------------------------------------------------
# SchedulerCore verbs (the redesigned engine-core surface)
# ---------------------------------------------------------------------------


class TestCoreVerbs:
    def test_submit_after_drain_rejects(self):
        core = SchedulerCore(4)
        core.drain()
        with pytest.raises(SchedulingError, match="after drain"):
            core.submit(Job(id="j", p=1, q=1, release=0))

    def test_out_of_order_release_rejects(self):
        core = SchedulerCore(4)
        core.advance_to(10)
        with pytest.raises(SchedulingError, match="out of order"):
            core.submit(Job(id="j", p=1, q=1, release=5))

    def test_duplicate_live_id_rejects(self):
        core = SchedulerCore(4)
        core.submit(Job(id="j", p=5, q=1, release=0))
        with pytest.raises(SchedulingError, match="already live"):
            core.submit(Job(id="j", p=5, q=1, release=0))

    def test_cancel_staged_then_id_is_reusable(self):
        core = SchedulerCore(4)
        core.submit(Job(id="j", p=5, q=1, release=3))
        assert core.cancel("j") == "staged"
        core.submit(Job(id="j", p=5, q=1, release=3))  # free again

    def test_cancel_queued(self):
        core = SchedulerCore(4)
        core.submit(Job(id="hog", p=10, q=4, release=0))
        core.submit(Job(id="j", p=2, q=1, release=0))
        core.advance_to(1)
        assert core.cancel("j") == "queued"
        assert core.status()["cancelled"] == 1

    def test_cancel_running_rejects(self):
        core = SchedulerCore(4)
        core.submit(Job(id="j", p=10, q=4, release=0))
        core.advance_to(1)
        with pytest.raises(SchedulingError, match="running"):
            core.cancel("j")

    def test_cancel_unknown_rejects(self):
        with pytest.raises(SchedulingError, match="not a live job"):
            SchedulerCore(4).cancel("ghost")

    def test_advance_backwards_rejects(self):
        core = SchedulerCore(4)
        core.advance_to(10)
        core.advance_to(10)  # same time is idempotent
        with pytest.raises(SchedulingError, match="already at"):
            core.advance_to(9)

    def test_reserve_blocks_capacity(self):
        core = SchedulerCore(4)
        core.reserve(0, 10, 4)  # the whole machine, [0, 10)
        core.submit(Job(id="j", p=2, q=1, release=0))
        core.advance_to(0)
        assert core.status()["running"] == 0  # pushed past the hole
        core.drain()
        assert core.last_completion == 12

    def test_reserve_validation(self):
        core = SchedulerCore(4)
        core.advance_to(5)
        with pytest.raises(SchedulingError, match="processors"):
            core.reserve(10, 5, 9)
        with pytest.raises(SchedulingError, match="positive"):
            core.reserve(10, 0, 2)
        with pytest.raises(SchedulingError, match="in the past"):
            core.reserve(2, 5, 2)

    def test_reserve_overfull_rejects(self):
        core = SchedulerCore(4)
        core.reserve(0, 10, 4)
        with pytest.raises(SchedulingError, match="does not fit"):
            core.reserve(5, 1, 1)

    def test_describe_state_is_deterministic_and_json_safe(self):
        def run():
            core = SchedulerCore(M, window=WINDOW)
            service = SchedulerService(core)
            for body in session_ops():
                env = service.handle(body)
                assert env["ok"], env
            return json.dumps(core.describe_state(), sort_keys=True)

        assert run() == run()


# ---------------------------------------------------------------------------
# SchedulerService: op layer + event-sourced recovery
# ---------------------------------------------------------------------------


class TestSchedulerService:
    def test_errors_are_envelopes_not_exceptions(self):
        service = SchedulerService(SchedulerCore(4))
        env = service.handle({"format": SERVE_FORMAT, "op": "cancel",
                              "job": "ghost"})
        assert env["ok"] is False
        assert env["error"]["kind"] == "scheduling"
        env = service.handle(["not", "a", "request"])
        assert env["error"]["kind"] == "protocol"

    def test_rejected_ops_are_not_journaled(self, tmp_path):
        service = SchedulerService.create(str(tmp_path / "j"), m=4)
        assert service.handle(make_submit("j", 5, 1, 0))["ok"]
        assert not service.handle(make_submit("j", 5, 1, 0))["ok"]
        assert service.seq == 1
        service.close()

    def test_snapshot_interval_validation(self):
        with pytest.raises(ServeError, match=">= 1"):
            SchedulerService(SchedulerCore(4), snapshot_interval=0)

    def test_journal_free_service_works(self):
        service = SchedulerService(SchedulerCore(4))
        assert service.handle(make_submit("j", 5, 1, 0))["ok"]
        assert service.seq == 0  # nothing journaled, nothing counted

    def test_status_and_state_queries(self, tmp_path):
        service = SchedulerService.create(
            str(tmp_path / "j"), m=M, window=WINDOW, snapshot_interval=SNAP
        )
        for body in session_ops():
            assert service.handle(body)["ok"]
        status = service.handle(make_query("status"))["result"]
        assert status["ops"] == len(session_ops())
        assert status["eof"] is True
        assert status["cancelled"] == 1  # the queued cancel, not the staged
        state = service.handle(make_query("state"))["result"]
        assert state["m"] == M and state["counters"]["arrived"] == 7
        rows = service.handle(make_query("windows"))["result"]["rows"]
        assert rows  # the drained session emitted its window rows
        service.close()

    @pytest.mark.parametrize("cut", [3, 7, 8, 12])
    def test_resume_mid_session_is_byte_identical(self, tmp_path, cut):
        """Kill the service (close without final snapshot) after ``cut``
        ops; recovery must reconstruct the exact mid-session state."""
        ops = session_ops()
        reference = SchedulerService(SchedulerCore(M, window=WINDOW))
        for body in ops[:cut]:
            assert reference.handle(body)["ok"]
        expected = json.dumps(
            reference.core.describe_state(), sort_keys=True
        )

        service = SchedulerService.create(
            str(tmp_path / "j"), m=M, window=WINDOW, snapshot_interval=SNAP
        )
        for body in ops[:cut]:
            assert service.handle(body)["ok"]
        service.close()

        recovered, recovery = SchedulerService.resume(str(tmp_path / "j"))
        assert recovered.seq == cut
        assert len(recovery.ops) == cut % SNAP
        assert json.dumps(
            recovered.core.describe_state(), sort_keys=True
        ) == expected
        recovered.close()

    def test_resume_rejects_batch_replay_journal(self, tmp_path):
        journal = Journal.create(str(tmp_path / "j"), {"mode": "replay"})
        journal.close()
        with pytest.raises(ServeError, match="not written by repro serve"):
            SchedulerService.resume(str(tmp_path / "j"))

    def test_shutdown_op_sets_stop_flag(self):
        service = SchedulerService(SchedulerCore(4))
        assert not service.stop_requested
        assert service.handle(make_query("shutdown"))["ok"]
        assert service.stop_requested


# ---------------------------------------------------------------------------
# HTTP daemon: end-to-end session, then the kill matrix
# ---------------------------------------------------------------------------


class _DaemonDied(Exception):
    """The daemon's socket dropped mid-request (it was SIGKILLed)."""


def _http(method, port, path, body=None, timeout=30):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as exc:
        # 4xx/5xx responses still carry a repro-serve/1 envelope
        return json.loads(exc.read())
    except (urllib.error.URLError, http.client.HTTPException, OSError) as exc:
        raise _DaemonDied(str(exc)) from exc


def _post_op(port, body):
    return _http("POST", port, "/v1/op", body)


def _spawn_serve(args, failpoint_spec=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(failpoints.ENV_VAR, None)
    if failpoint_spec is not None:
        env[failpoints.ENV_VAR] = failpoint_spec
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def _wait_for_port(port_file: Path, proc, timeout=30.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if port_file.is_file():
            text = port_file.read_text().strip()
            if text:
                return int(text)
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon exited before binding: rc={proc.returncode}\n"
                f"{proc.stderr.read()}"
            )
        time.sleep(0.02)
    raise AssertionError("daemon never published its port file")


@pytest.fixture(scope="module")
def reference_state(tmp_path_factory) -> bytes:
    """The uninterrupted session's ``/v1/state`` body, byte for byte
    (computed through the transport-free service: the HTTP layer
    serialises the identical envelope with ``sort_keys=True``)."""
    base = tmp_path_factory.mktemp("serve-reference")
    service = SchedulerService.create(
        str(base / "journal"), m=M, window=WINDOW, snapshot_interval=SNAP
    )
    for body in session_ops():
        env = service.handle(body)
        assert env["ok"], env
    envelope = service.handle(make_query("state"))
    service.close()
    assert envelope["ok"]
    return json.dumps(envelope, sort_keys=True).encode("utf-8")


def _fresh_args(journal, port_file):
    return [
        str(journal), "-m", str(M), "--window", str(WINDOW),
        "--snapshot-interval", str(SNAP), "--port-file", str(port_file),
    ]


def test_daemon_session_end_to_end(tmp_path, reference_state):
    proc = _spawn_serve(_fresh_args(tmp_path / "journal", tmp_path / "port"))
    try:
        port = _wait_for_port(tmp_path / "port", proc)
        for body in session_ops():
            env = _post_op(port, body)
            assert env["ok"], env
        # a scheduling rejection is an answer, not a connection teardown
        env = _post_op(port, make_submit("a8", 1, 1, 999))
        assert not env["ok"] and "after drain" in env["error"]["message"]
        assert env["error"]["kind"] == "scheduling"
        status = _http("GET", port, "/v1/status")["result"]
        assert status["ops"] == len(session_ops()) and status["eof"]
        raw = _state_bytes(port)
        assert raw == reference_state
        assert _http("POST", port, "/v1/shutdown")["result"]["stopping"]
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=30)


def _state_bytes(port) -> bytes:
    request = urllib.request.Request(f"http://127.0.0.1:{port}/v1/state")
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.read()


def test_daemon_reserve_over_http(tmp_path):
    proc = _spawn_serve(_fresh_args(tmp_path / "journal", tmp_path / "port"))
    try:
        port = _wait_for_port(tmp_path / "port", proc)
        env = _post_op(port, make_reserve(5, 10, M))
        assert env["ok"], env
        env = _post_op(port, make_reserve(7, 1, 1))  # inside the hole
        assert not env["ok"] and env["error"]["kind"] == "scheduling"
        state = _http("GET", port, "/v1/state")["result"]
        assert M - state["profile_caps"][1] == M  # the hole is committed
        _http("POST", port, "/v1/shutdown")
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=30)


# Every serve-path failpoint, placed mid-stream.  ``after=`` indexes are
# hits of that site: op sites hit once per mutating request, journal
# sites once per record/snapshot, so each spec kills a *different*
# request of the same 16-op session.
KILL_SPECS = (
    "serve.op.apply:after=9",
    "serve.op.ack:after=9",
    "journal.record.append:after=6",
    "journal.record.torn:after=6",
    "journal.snapshot.write:after=1",
    "journal.snapshot.rename:after=1",
    "journal.snapshot.marker:after=1",
)


def _retry_unacked(port, body):
    """What a correct serve client does after a connection drop: check
    whether the in-flight op landed, and re-send it if not.  Submits and
    cancels are self-detecting (a duplicate is rejected by id); advance
    and drain are checked against the recovered status gauges so an
    already-applied op is not double-journaled."""
    op = body["op"]
    if op in ("advance", "drain"):
        status = _http("GET", port, "/v1/status")["result"]
        applied = (
            status["eof"] if op == "drain"
            else status["horizon"] is not None
            and status["horizon"] >= body["to"]
        )
        if applied:
            return
    envelope = _post_op(port, body)
    if not envelope["ok"]:
        message = envelope["error"]["message"]
        assert envelope["error"]["kind"] == "scheduling"
        assert "already live" in message or "not a live job" in message


@pytest.mark.parametrize("spec", KILL_SPECS, ids=lambda s: s.split(":")[0])
def test_kill_resume_state_is_byte_identical(tmp_path, spec, reference_state):
    journal = tmp_path / "journal"
    proc = _spawn_serve(_fresh_args(journal, tmp_path / "port"), spec)
    crashed_at = None
    try:
        port = _wait_for_port(tmp_path / "port", proc)
        for index, body in enumerate(session_ops()):
            try:
                env = _post_op(port, body)
                assert env["ok"], env
            except _DaemonDied:
                crashed_at = index
                break
        assert crashed_at is not None, f"failpoint {spec!r} never fired"
        assert proc.wait(timeout=30) == -signal.SIGKILL
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=30)

    proc = _spawn_serve(
        [str(journal), "--resume", "--port-file", str(tmp_path / "port2")]
    )
    try:
        port = _wait_for_port(tmp_path / "port2", proc)
        ops = session_ops()
        _retry_unacked(port, ops[crashed_at])
        for body in ops[crashed_at + 1:]:
            env = _post_op(port, body)
            assert env["ok"], env
        assert _state_bytes(port) == reference_state
        _http("POST", port, "/v1/shutdown")
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=30)


def test_resume_refuses_while_config_flags_given(tmp_path, capsys):
    from repro.cli import main

    assert main(["serve", str(tmp_path / "j"), "--resume", "-m", "8"]) == 2
    err = capsys.readouterr().err
    assert "--resume takes its configuration from the journal" in err
