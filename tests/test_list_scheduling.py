"""Tests for LSRC list scheduling — the paper's central algorithm."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    ListScheduler,
    SequentialPlacementScheduler,
    available_schedulers,
    get_scheduler,
    list_schedule,
    schedule_with,
)
from repro.core import ReservationInstance, RigidInstance
from repro.errors import SchedulingError

from conftest import random_resa, random_rigid


class TestBasicBehaviour:
    def test_single_job(self):
        inst = RigidInstance.from_specs(2, [(3, 1)])
        s = list_schedule(inst)
        assert s.starts[0] == 0
        assert s.makespan == 3

    def test_parallel_fill(self):
        inst = RigidInstance.from_specs(4, [(2, 2), (2, 2)])
        s = list_schedule(inst)
        assert s.makespan == 2  # both side by side

    def test_sequential_when_too_wide(self):
        inst = RigidInstance.from_specs(4, [(2, 3), (2, 3)])
        s = list_schedule(inst)
        assert s.makespan == 4

    def test_empty_instance(self):
        inst = RigidInstance(m=2, jobs=())
        assert list_schedule(inst).makespan == 0

    def test_verifies(self, tiny_resa):
        list_schedule(tiny_resa).verify()

    def test_respects_release_times(self):
        inst = RigidInstance.from_specs(2, [(1, 1, 5)])
        s = list_schedule(inst)
        assert s.starts[0] == 5

    def test_backfills_around_head(self):
        # list order: wide job first (cannot start), narrow ones fill in
        inst = RigidInstance.from_specs(2, [(2, 2), (1, 1), (1, 1)])
        s = list_schedule(inst, order=[1, 2, 0])
        # both narrow jobs run at 0, wide job after
        assert s.starts[1] == 0 and s.starts[2] == 0
        assert s.starts[0] == 1
        assert s.makespan == 3


class TestReservationSemantics:
    def test_does_not_collide_with_future_reservation(self):
        # m=1: a 3-long job cannot start at 0 because a reservation begins
        # at 2; LSRC must hold it until the reservation ends
        inst = ReservationInstance.from_specs(1, [(3, 1)], [(2, 1, 1)])
        s = list_schedule(inst)
        assert s.starts[0] == 3
        s.verify()

    def test_fits_exactly_into_gap(self):
        inst = ReservationInstance.from_specs(1, [(2, 1)], [(2, 1, 1)])
        s = list_schedule(inst)
        assert s.starts[0] == 0

    def test_short_job_jumps_gap_queue(self):
        # order: long job first; it must wait for the reservation, but the
        # short job fits before the reservation => greedy starts it at 0
        inst = ReservationInstance.from_specs(1, [(3, 1), (2, 1)], [(2, 1, 1)])
        s = list_schedule(inst)
        assert s.starts[1] == 0
        assert s.starts[0] == 3
        assert s.makespan == 6

    def test_partial_capacity_during_reservation(self):
        # 2 of 4 procs reserved on [0, 10): a q=2 job runs, a q=3 waits
        inst = ReservationInstance.from_specs(
            4, [(2, 2), (2, 3)], [(0, 10, 2)]
        )
        s = list_schedule(inst)
        assert s.starts[0] == 0
        assert s.starts[1] == 10

    def test_greedy_property(self):
        """LSRC never leaves a startable job waiting (spot check)."""
        inst = random_resa(7)
        s = ListScheduler().schedule(inst)
        s.verify()
        # at every decision time, any pending job that would have fit must
        # have started: verify via independent re-simulation
        profile = inst.availability_profile()
        events = sorted(
            {0}
            | {s.starts[j.id] for j in inst.jobs}
            | {s.starts[j.id] + j.p for j in inst.jobs}
            | set(profile.breakpoints)
        )
        for job in inst.jobs:
            sj = s.starts[job.id]
            for t in events:
                if t >= sj:
                    break
                if t < job.release:
                    continue
                # capacity available to `job` at t, with all other jobs at
                # their scheduled positions
                free = profile.copy()
                for other in inst.jobs:
                    if other.id != job.id:
                        free.reserve(s.starts[other.id], other.p, other.q)
                assert not free.fits(job.q, t, job.p), (
                    f"job {job.id} idle at {t} although it fits"
                )


class TestPriorityRules:
    @pytest.mark.parametrize(
        "rule", ["fifo", "lpt", "spt", "laf", "saf", "widest", "narrowest"]
    )
    def test_all_rules_produce_feasible_schedules(self, rule, tiny_resa):
        s = ListScheduler(rule).schedule(tiny_resa)
        s.verify()

    def test_lpt_orders_by_duration(self, tiny_rigid):
        s = ListScheduler("lpt").schedule(tiny_rigid)
        s.verify()
        assert s.algorithm == "lsrc[lpt]"

    def test_random_rule_deterministic(self, tiny_rigid):
        a = ListScheduler("random:42").schedule(tiny_rigid)
        b = ListScheduler("random:42").schedule(tiny_rigid)
        assert a.starts == b.starts

    def test_unknown_rule(self):
        with pytest.raises(SchedulingError):
            ListScheduler("definitely-not-a-rule")

    def test_explicit_order_conflicts_with_priority(self, tiny_rigid):
        with pytest.raises(SchedulingError):
            list_schedule(tiny_rigid, priority="lpt", order=[0, 1, 2, 3])


class TestSequentialPlacement:
    def test_places_in_order(self):
        inst = RigidInstance.from_specs(2, [(2, 2), (1, 1), (1, 1)])
        s = SequentialPlacementScheduler().schedule(inst)
        s.verify()
        assert s.starts[0] == 0  # first in list gets the floor

    def test_never_beats_compact_backfill_here(self):
        # sequential placement in list order equals conservative backfilling
        inst = random_resa(11)
        from repro.algorithms import conservative_backfill

        a = SequentialPlacementScheduler().schedule(inst)
        b = conservative_backfill(inst)
        assert a.starts == b.starts


class TestRegistry:
    def test_lsrc_registered(self):
        assert "lsrc" in available_schedulers()

    def test_get_scheduler_unknown(self):
        with pytest.raises(SchedulingError):
            get_scheduler("nope")

    def test_schedule_with(self, tiny_rigid):
        results = schedule_with(["lsrc", "fcfs"], tiny_rigid)
        assert set(results) == {"lsrc", "fcfs"}
        for s in results.values():
            s.verify()


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_lsrc_always_feasible_on_random_instances(seed):
    inst = random_resa(seed)
    s = ListScheduler().schedule(inst)
    s.verify()


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_lsrc_within_graham_bound_of_lower_bound_times_two(seed):
    """Sanity envelope: LSRC <= 2 * lower_bound never fails on rigid
    instances (Theorem 2 with lower_bound <= C*max)."""
    inst = random_rigid(seed)
    from repro.core import lower_bound

    s = ListScheduler().schedule(inst)
    assert s.makespan <= 2 * lower_bound(inst) + 1e-9
