"""Instance-wise dominance properties between the policies.

Two relations hold *pointwise* (not just in the worst case), and both are
useful implementation checks because they couple independent code paths:

1. **Conservative backfilling dominates FCFS job-for-job.**  Both place
   jobs in queue order; FCFS adds the no-overtaking gate.  By the
   left-shift exchange argument, relaxing the gate can only move every
   start earlier: the backfilled job occupies, within any later job's
   FCFS window, a subset of the capacity it occupied under FCFS.

2. **LSRC schedules are left-shift stable.**  LSRC starts a job at the
   first decision point where it fits against the already-started jobs —
   which is exactly the placement rule of
   :func:`repro.core.schedule.left_shifted`, so re-shifting changes
   nothing.  (A failure here means the two implementations disagree about
   "earliest feasible start".)
"""

from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    ConservativeBackfillScheduler,
    FCFSScheduler,
    ListScheduler,
)
from repro.core import left_shifted

from conftest import random_resa, random_rigid


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000_000))
def test_conservative_dominates_fcfs_jobwise(seed):
    inst = random_resa(seed)
    fcfs = FCFSScheduler().schedule(inst)
    cons = ConservativeBackfillScheduler().schedule(inst)
    for job in inst.jobs:
        assert cons.starts[job.id] <= fcfs.starts[job.id], (
            f"job {job.id} starts later under conservative backfilling"
        )
    assert cons.makespan <= fcfs.makespan


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000_000))
def test_lsrc_is_left_shift_stable(seed):
    inst = random_resa(seed)
    schedule = ListScheduler().schedule(inst)
    shifted = left_shifted(schedule)
    assert shifted.starts == schedule.starts


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000_000))
def test_conservative_is_left_shift_stable(seed):
    """Conservative backfilling *is* sequential earliest-fit in start
    order modulo ordering ties, so left-shifting cannot improve it either."""
    inst = random_rigid(seed).to_reservation_instance()
    schedule = ConservativeBackfillScheduler().schedule(inst)
    shifted = left_shifted(schedule)
    assert shifted.makespan == schedule.makespan


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000_000))
def test_fcfs_left_shift_recovers_backfilling_gains(seed):
    """Left-shifting an FCFS schedule is a (weak) form of backfilling:
    it never hurts, and whenever it helps it lands between FCFS and
    conservative backfilling."""
    inst = random_resa(seed)
    fcfs = FCFSScheduler().schedule(inst)
    shifted = left_shifted(fcfs)
    cons = ConservativeBackfillScheduler().schedule(inst)
    assert shifted.makespan <= fcfs.makespan
    assert cons.makespan <= fcfs.makespan
