"""Tests for workload characterisation."""

import pytest

from repro.core import ReservationInstance, RigidInstance
from repro.errors import InvalidInstanceError
from repro.workloads import (
    characterize,
    characterize_many,
    feitelson_instance,
    uniform_instance,
)


class TestCharacterize:
    def test_basic_counts(self, tiny_rigid):
        profile = characterize(tiny_rigid)
        assert profile.n == 4
        assert profile.m == 4
        assert profile.total_work == float(tiny_rigid.total_work)
        assert profile.max_width == 4

    def test_load_factor_of_perfect_packing(self):
        # 2 jobs exactly filling m=2 for 3 units: load = 1
        inst = RigidInstance.from_specs(2, [(3, 1), (3, 1)])
        assert characterize(inst).load_factor == pytest.approx(1.0)

    def test_serial_and_pow2_shares(self):
        inst = RigidInstance.from_specs(8, [(1, 1), (1, 2), (1, 3), (1, 4)])
        profile = characterize(inst)
        assert profile.serial_share == 0.25
        assert profile.pow2_share == 0.75  # widths 1, 2, 4

    def test_runtime_cv_flat(self):
        inst = RigidInstance.from_specs(2, [(5, 1), (5, 1), (5, 2)])
        assert characterize(inst).runtime_cv == 0.0

    def test_runtime_cv_heavy_tail(self):
        inst = feitelson_instance(300, 32, seed=1)
        profile = characterize(inst)
        assert profile.runtime_cv > 0.8  # hyper-exponential signature

    def test_reservation_pressure(self):
        inst = ReservationInstance.from_specs(
            4, [(1, 1)], [(0, 10, 2)]
        )
        # 2 of 4 procs for the whole reservation span
        assert characterize(inst).reservation_pressure == pytest.approx(0.5)

    def test_no_reservations_zero_pressure(self, tiny_rigid):
        assert characterize(tiny_rigid).reservation_pressure == 0.0

    def test_arrival_span(self):
        inst = RigidInstance.from_specs(2, [(1, 1, 0), (1, 1, 9)])
        assert characterize(inst).arrival_span == 9.0

    def test_empty_rejected(self):
        with pytest.raises(InvalidInstanceError):
            characterize(RigidInstance(m=2, jobs=()))

    def test_as_dict_keys(self, tiny_rigid):
        row = characterize(tiny_rigid).as_dict()
        assert {"n", "m", "load", "mean_q", "pow2%", "cv_p"} <= set(row)

    def test_characterize_many(self):
        rows = characterize_many(
            [uniform_instance(5, 8, seed=s) for s in range(3)]
        )
        assert len(rows) == 3
        assert all(r["n"] == 5 for r in rows)
