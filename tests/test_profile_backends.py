"""The profile-backend protocol: three implementations, one behaviour.

Three layers of evidence that :class:`TreeProfile` and
:class:`ArrayProfile` are drop-ins for :class:`ListProfile`:

* *property round-trips* — reserve-then-add restores the profile, queries
  agree with brute-force references, Fraction/float breakpoints and
  zero-capacity tails survive, all parametrized over the backends (the
  array backend joins wherever times are integral — its int64 columns
  are an explicit contract, asserted loud in ``TestArrayIntOnly``);
* *cross-backend equivalence* — identical op sequences leave every
  backend representing the same function, query for query;
* *scheduler differential* — LSRC, FCFS, conservative backfilling and
  shelf produce **identical schedules** under any backend on 50+
  randomized instances with mixed int/Fraction times.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    ConservativeBackfillScheduler,
    FCFSScheduler,
    FirstFitShelfScheduler,
    ListScheduler,
)
from repro.core import ReservationInstance
from repro.core.profiles import (
    ArrayProfile,
    ListProfile,
    ProfileBackend,
    TreeProfile,
    available_backends,
    convert_profile,
    get_default_backend,
    get_default_backend_name,
    make_profile,
    resolve_backend,
    set_default_backend,
)
from repro.errors import CapacityError, InvalidInstanceError

from conftest import NaiveCapacity, random_resa

BACKENDS = [ListProfile, TreeProfile, ArrayProfile]
#: Backends accepting Fraction/float breakpoints (the array backend's
#: integer-grid contract is asserted separately in TestArrayIntOnly).
EXACT_TIME_BACKENDS = [ListProfile, TreeProfile]


@pytest.fixture(params=BACKENDS, ids=lambda cls: cls.__name__)
def backend(request):
    """Each test in this module runs once per backend."""
    return request.param


def skip_unless_exact_times(backend):
    if backend is ArrayProfile:
        pytest.skip("array backend is integer-grid only (by contract)")


# ---------------------------------------------------------------------------
# registry / selection
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_registry_names(self):
        assert {"list", "tree", "array"} <= set(available_backends())

    def test_resolve_by_name_class_and_none(self):
        assert resolve_backend("list") is ListProfile
        assert resolve_backend("tree") is TreeProfile
        assert resolve_backend("array") is ArrayProfile
        assert resolve_backend(TreeProfile) is TreeProfile
        assert resolve_backend(None) is get_default_backend()

    def test_resolve_unknown_rejected(self):
        with pytest.raises(InvalidInstanceError):
            resolve_backend("btree")
        with pytest.raises(InvalidInstanceError):
            resolve_backend(42)

    def test_default_backend_switch(self):
        original = get_default_backend_name()
        try:
            set_default_backend("tree")
            assert get_default_backend() is TreeProfile
            inst = ReservationInstance.from_specs(4, [(2, 2)], [(1, 1, 1)])
            assert isinstance(inst.availability_profile(), TreeProfile)
        finally:
            set_default_backend(original)
        assert get_default_backend_name() == original

    def test_make_and_convert(self):
        p = make_profile([0, 2], [4, 1], "tree")
        assert isinstance(p, TreeProfile)
        q = convert_profile(p, "list")
        assert isinstance(q, ListProfile)
        assert p == q
        # conversion is a copy either way
        r = convert_profile(p, "tree")
        r.add(0, 1, 1)
        assert p != r

    def test_availability_profile_accepts_backend(self, backend):
        inst = ReservationInstance.from_specs(4, [(2, 2)], [(1, 2, 2)])
        profile = inst.availability_profile(profile_backend=backend)
        assert isinstance(profile, backend)
        assert profile.capacity_at(1) == 2


# ---------------------------------------------------------------------------
# behavioural parity on hand-picked cases
# ---------------------------------------------------------------------------

class TestBackendBasics:
    def test_constant(self, backend):
        p = backend.constant(4)
        assert p.capacity_at(0) == 4
        assert p.capacity_at(10**9) == 4
        assert p.breakpoints == (0,)

    def test_validation(self, backend):
        with pytest.raises(InvalidInstanceError):
            backend([1, 2], [1, 2])
        with pytest.raises(InvalidInstanceError):
            backend([0, 2, 2], [1, 2, 3])
        with pytest.raises(InvalidInstanceError):
            backend([0], [-1])
        with pytest.raises(InvalidInstanceError):
            backend([0], [1.5])

    def test_try_reserve(self, backend):
        p = backend.constant(4)
        assert p.try_reserve(2, 3, 3) is True
        assert p.capacity_at(3) == 1
        snapshot = p.copy()
        # a failing probe must leave the profile untouched
        assert p.try_reserve(0, 10, 2) is False
        assert p == snapshot
        assert p.as_lists() == snapshot.as_lists()
        # zero amount fits without mutating
        assert p.try_reserve(0, 10, 0) is True
        assert p == snapshot

    def test_reserve_fitting_matches_reserve(self, backend):
        a = backend.from_segments([(0, 5), (4, 2), (9, 6)])
        b = a.copy()
        a.reserve(1, 6, 2)
        b.reserve_fitting(1, 6, 2)
        assert a == b
        assert a.as_lists() == b.as_lists()

    def test_merges_equal_segments(self, backend):
        assert backend([0, 1, 2], [3, 3, 4]).breakpoints == (0, 2)

    def test_boundary_coalescing_after_mutation(self, backend):
        p = backend.from_segments([(0, 4), (2, 2)])
        p.add(2, 3, 2)  # [2, 5) back to 4 => equal to the left neighbour
        assert p.breakpoints == (0, 5)
        p2 = backend.constant(4)
        p2.reserve(0, 2, 2)  # [0:2][2:4]
        p2.reserve(2, 2, 2)  # now equal across the boundary at 2
        assert p2.breakpoints == (0, 4)

    def test_overflow_rejected_and_state_unchanged(self, backend):
        p = backend.constant(2)
        p.reserve(0, 5, 1)
        snapshot = p.copy()
        with pytest.raises(CapacityError):
            p.reserve(3, 4, 2)
        assert p == snapshot
        assert p.breakpoints == snapshot.breakpoints

    def test_zero_capacity_tail(self, backend):
        p = backend.from_segments([(0, 3), (5, 0)])
        assert p.final_capacity() == 0
        assert p.earliest_fit(1, 1, after=6) is None
        assert p.earliest_fit(1, 2, after=4) is None  # cannot straddle
        assert p.earliest_fit(0, 7, after=2) == 2     # zero width always fits
        assert p.first_time_area_reaches(100) is None
        assert p.area(0, 100) == 15

    def test_fraction_times(self, backend):
        skip_unless_exact_times(backend)
        p = backend.constant(3)
        p.reserve(Fraction(1, 3), Fraction(1, 6), 2)
        assert p.capacity_at(Fraction(1, 3)) == 1
        assert p.capacity_at(Fraction(1, 2)) == 3
        assert p.earliest_fit(3, Fraction(1, 2)) == Fraction(1, 2)
        assert p.area(0, 1) == 3 - 2 * Fraction(1, 6)

    def test_float_times(self, backend):
        skip_unless_exact_times(backend)
        p = backend.constant(2)
        p.reserve(0.5, 1.25, 1)
        assert p.capacity_at(0.5) == 1
        assert p.capacity_at(1.75) == 2
        assert p.breakpoints == (0, 0.5, 1.75)
        assert p.min_capacity(0.0, 3.0) == 1

    def test_cross_backend_equality_and_hash(self):
        a = ListProfile.from_segments([(0, 2), (1, 3)])
        b = TreeProfile.from_segments([(0, 2), (1, 3)])
        c = ArrayProfile.from_segments([(0, 2), (1, 3)])
        assert a == b == c
        assert hash(a) == hash(b) == hash(c)
        b.add(5, 1, 1)
        assert a != b
        assert a == c

    def test_protocol_subclass(self, backend):
        assert issubclass(backend, ProfileBackend)

    def test_copy_is_independent(self, backend):
        p = backend.constant(4)
        q = p.copy()
        q.reserve(0, 1, 2)
        assert p.capacity_at(0) == 4
        assert q.capacity_at(0) == 2


# ---------------------------------------------------------------------------
# batch primitive
# ---------------------------------------------------------------------------

class TestReserveMany:
    def test_matches_sequential(self, backend):
        blocks = [(0, 4, 2), (2, 3, 1), (Fraction(7, 2), 2, 3)]
        if backend is ArrayProfile:
            blocks = [(0, 4, 2), (2, 3, 1), (4, 2, 3)]
        batch = backend.constant(8)
        batch.reserve_many(blocks)
        seq = backend.constant(8)
        for s, d, a in blocks:
            seq.reserve(s, d, a)
        assert batch == seq

    def test_atomic_on_failure(self, backend):
        p = backend.constant(2)
        with pytest.raises(CapacityError):
            p.reserve_many([(0, 2, 1), (1, 2, 2)])
        assert p == backend.constant(2)

    def test_empty_and_zero_blocks(self, backend):
        p = backend.constant(3)
        p.reserve_many([])
        p.reserve_many([(0, 5, 0)])
        assert p == backend.constant(3)

    def test_validation(self, backend):
        with pytest.raises(InvalidInstanceError):
            backend.constant(3).reserve_many([(0, 0, 1)])
        with pytest.raises(InvalidInstanceError):
            backend.constant(3).reserve_many([(-1, 2, 1)])

    def test_atomic_on_invalid_later_block(self, backend):
        """A later block failing *argument validation* must also leave the
        profile untouched, not just a capacity failure."""
        p = backend.constant(3)
        with pytest.raises(InvalidInstanceError):
            p.reserve_many([(0, 2, 1), (1, 0, 1)])  # second: zero duration
        assert p == backend.constant(3)

    def test_random_batches_agree_across_backends(self):
        """TreeProfile.reserve_many's single split/merge sweep must land on
        exactly the list backend's atomic result, block order included."""
        rng = random.Random(42)
        for _ in range(40):
            times = sorted(rng.sample(range(0, 60), rng.randint(1, 8)))
            if not times or times[0] != 0:
                times.insert(0, 0)
            caps = [rng.randint(2, 10) for _ in times]
            lp, tp = ListProfile(times, caps), TreeProfile(times, caps)
            blocks = []
            for _ in range(rng.randint(1, 10)):
                start = Fraction(rng.randint(0, 120), rng.choice([1, 2]))
                blocks.append((start, rng.randint(1, 20), rng.randint(0, 2)))
            try:
                lp.reserve_many(blocks)
            except CapacityError:
                with pytest.raises(CapacityError):
                    tp.reserve_many(blocks)
                assert tp == TreeProfile(times, caps)  # untouched
                continue
            tp.reserve_many(blocks)
            assert lp == tp
            assert lp.as_lists() == tp.as_lists()  # canonical form too


# ---------------------------------------------------------------------------
# max_capacity_between (the incremental-LSRC skip query)
# ---------------------------------------------------------------------------

class TestMaxCapacityBetween:
    def test_matches_brute_force(self, backend):
        times = [0, 2, 5, 7, 11, 13]
        caps = [3, 6, 1, 8, 2, 4]
        p = backend(times, caps)

        def brute(start, end):
            best = p.capacity_at(start)
            for t in times:
                if start < t < end:
                    best = max(best, p.capacity_at(t))
            return best

        for start in range(0, 15):
            for end in range(start + 1, 16):
                assert p.max_capacity_between(start, end) == brute(start, end)

    def test_suffix_maximum(self, backend):
        p = backend([0, 2, 5, 7], [3, 6, 1, 4])
        assert p.max_capacity_between(0) == 6
        assert p.max_capacity_between(3) == 6  # segment containing 3 counts
        assert p.max_capacity_between(5) == 4
        assert p.max_capacity_between(100) == 4

    def test_fraction_windows(self, backend):
        skip_unless_exact_times(backend)
        p = backend([0, Fraction(3, 2), 3], [2, 7, 1])
        assert p.max_capacity_between(0, Fraction(3, 2)) == 2
        assert p.max_capacity_between(1, 2) == 7
        assert p.max_capacity_between(Fraction(3, 2), 3) == 7
        assert p.max_capacity_between(3, 10) == 1

    def test_invalid_windows(self, backend):
        p = backend.constant(3)
        with pytest.raises(InvalidInstanceError):
            p.max_capacity_between(2, 2)
        with pytest.raises(InvalidInstanceError):
            p.max_capacity_between(5, 1)
        with pytest.raises(InvalidInstanceError):
            p.max_capacity_between(-1, 4)

    def test_backends_agree_after_mutation(self):
        rng = random.Random(7)
        for _ in range(30):
            times = sorted(rng.sample(range(0, 50), rng.randint(1, 10)))
            if not times or times[0] != 0:
                times.insert(0, 0)
            caps = [rng.randint(0, 9) for _ in times]
            lp, tp = ListProfile(times, caps), TreeProfile(times, caps)
            for _ in range(8):
                start = rng.randint(0, 55)
                dur = rng.randint(1, 15)
                amount = rng.randint(1, 3)
                if lp.min_capacity(start, start + dur) >= amount:
                    lp.reserve(start, dur, amount)
                    tp.reserve(start, dur, amount)
                end = None if rng.random() < 0.25 else start + rng.randint(1, 20)
                assert (lp.max_capacity_between(start, end)
                        == tp.max_capacity_between(start, end))


# ---------------------------------------------------------------------------
# windowed-area regression (the deep-window bisection fix)
# ---------------------------------------------------------------------------

class TestWindowedArea:
    @pytest.fixture(params=BACKENDS, ids=lambda cls: cls.__name__)
    def big_profile(self, request):
        """~1k-breakpoint sawtooth profile."""
        times = list(range(1000))
        caps = [5 + (i % 7) for i in range(1000)]
        return request.param(times, caps)

    def test_area_deep_window(self, big_profile):
        # brute-force reference over the window only
        start, end = 950, 973
        want = sum(5 + (t % 7) for t in range(start, end))
        assert big_profile.area(start, end) == want

    def test_area_partial_segments(self, big_profile):
        got = big_profile.area(Fraction(1901, 2), 952)
        want = (5 + (950 % 7)) * Fraction(1, 2) + (5 + (951 % 7))
        assert got == want

    def test_first_time_area_reaches_deep_start(self, big_profile):
        start = 900
        work = 37
        t = big_profile.first_time_area_reaches(work, start=start)
        assert big_profile.area(start, t) >= work
        # minimality: any earlier breakpoint has strictly less area
        eps = Fraction(1, 1000)
        assert big_profile.area(start, t - eps) < work

    def test_area_windows_scale_sublinearly(self, big_profile):
        """The bisected window scan must not walk segments before start."""
        import timeit
        deep = timeit.timeit(
            lambda: big_profile.area(990, 995), number=200
        )
        # sanity only: completes fast and returns the right value; the
        # benchmark quantifies the speedup properly.
        assert big_profile.area(990, 995) == sum(
            5 + (t % 7) for t in range(990, 995)
        )
        assert deep < 5.0


# ---------------------------------------------------------------------------
# property tests (both backends, naive references)
# ---------------------------------------------------------------------------

hold_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=20),   # start
        st.integers(min_value=1, max_value=10),   # duration
        st.integers(min_value=1, max_value=3),    # amount
    ),
    max_size=6,
)

time_kinds = st.sampled_from(["int", "fraction", "float"])


def _cast(value: int, kind: str):
    if kind == "fraction":
        return Fraction(value, 2)
    if kind == "float":
        return value / 2.0
    return value


@settings(max_examples=60, deadline=None)
@given(
    cls=st.sampled_from(BACKENDS),
    m=st.integers(min_value=2, max_value=12),
    holds=hold_lists,
    kind=time_kinds,
)
def test_reserve_add_roundtrip(cls, m, holds, kind):
    """reserve-then-add (in reverse) restores the original profile."""
    if cls is ArrayProfile:
        kind = "int"  # the array backend's integer-grid contract
    p = cls.constant(m)
    applied = []
    for start, dur, amount in holds:
        start, dur = _cast(start, kind), _cast(dur, kind)
        if p.min_capacity(start, start + dur) >= amount:
            p.reserve(start, dur, amount)
            applied.append((start, dur, amount))
    for start, dur, amount in reversed(applied):
        p.add(start, dur, amount)
    assert p == cls.constant(m)
    assert p.breakpoints == (0,)


@settings(max_examples=60, deadline=None)
@given(
    cls=st.sampled_from(BACKENDS),
    m=st.integers(min_value=3, max_value=12),
    holds=hold_lists,
)
def test_backend_matches_naive_capacity(cls, m, holds):
    profile = cls.constant(m)
    naive = NaiveCapacity(m)
    for start, dur, amount in holds:
        if profile.min_capacity(start, start + dur) >= amount:
            profile.reserve(start, dur, amount)
            naive.reserve(start, dur, amount)
    for t in range(0, 35):
        assert profile.capacity_at(t) == naive.capacity_at(t), f"t={t}"
    for a in range(0, 30, 3):
        for b in (a + 1, a + 5):
            assert profile.min_capacity(a, b) == naive.min_capacity(a, b)


@settings(max_examples=60, deadline=None)
@given(
    cls=st.sampled_from(BACKENDS),
    m=st.integers(min_value=2, max_value=10),
    holds=hold_lists,
    q=st.integers(min_value=0, max_value=4),
    duration=st.integers(min_value=1, max_value=8),
    after=st.integers(min_value=0, max_value=15),
)
def test_backend_earliest_fit_matches_naive(cls, m, holds, q, duration, after):
    profile = cls.constant(m)
    naive = NaiveCapacity(m)
    for start, dur, amount in holds:
        if profile.min_capacity(start, start + dur) >= amount:
            profile.reserve(start, dur, amount)
            naive.reserve(start, dur, amount)
    assert profile.earliest_fit(q, duration, after=after) == naive.earliest_fit(
        q, duration, after=after
    )


@settings(max_examples=60, deadline=None)
@given(
    m=st.integers(min_value=2, max_value=12),
    holds=hold_lists,
    kind=time_kinds,
)
def test_backends_agree_segmentwise(m, holds, kind):
    """Identical op sequences leave every backend representing the same
    function — segments, aggregates, areas and fits included (the array
    backend joins on integer-timed sequences)."""
    profiles = [ListProfile.constant(m), TreeProfile.constant(m)]
    if kind == "int":
        profiles.append(ArrayProfile.constant(m))
    lp = profiles[0]
    for start, dur, amount in holds:
        start, dur = _cast(start, kind), _cast(dur, kind)
        if lp.min_capacity(start, start + dur) >= amount:
            for p in profiles:
                p.reserve(start, dur, amount)
    for tp in profiles[1:]:
        assert list(lp.segments()) == list(tp.segments())
        assert lp.breakpoints == tp.breakpoints
        assert lp.min_capacity_overall() == tp.min_capacity_overall()
        assert lp.max_capacity() == tp.max_capacity()
        assert lp.final_capacity() == tp.final_capacity()
        for a in range(0, 24, 5):
            assert lp.area(a, a + 7) == tp.area(a, a + 7)
            assert lp.first_time_area_reaches(11, start=a) == tp.first_time_area_reaches(11, start=a)
        assert lp.is_nondecreasing() == tp.is_nondecreasing()


# ---------------------------------------------------------------------------
# scheduler differential: identical schedules under either backend
# ---------------------------------------------------------------------------

def _fractionalized(inst: ReservationInstance, seed: int) -> ReservationInstance:
    """Scale an instance by a Fraction so times mix int and Fraction."""
    factor = Fraction(random.Random(seed).choice([3, 5, 7]), 2)
    return inst.scaled(factor)


# timebase="exact" pins the schedulers that grew an integer fast path to
# the reference engine: this test compares the *backends*, which the fast
# path deliberately bypasses (tests/test_timebase.py covers that axis).
DIFFERENTIAL_SCHEDULERS = [
    ("lsrc", lambda b: ListScheduler(profile_backend=b, timebase="exact")),
    ("lsrc-lpt",
     lambda b: ListScheduler("lpt", profile_backend=b, timebase="exact")),
    ("fcfs", lambda b: FCFSScheduler(profile_backend=b)),
    ("backfill-cons",
     lambda b: ConservativeBackfillScheduler(
         profile_backend=b, timebase="exact")),
    ("shelf-ff", lambda b: FirstFitShelfScheduler(profile_backend=b)),
]


@pytest.mark.parametrize("name,factory", DIFFERENTIAL_SCHEDULERS,
                         ids=[n for n, _ in DIFFERENTIAL_SCHEDULERS])
def test_schedulers_identical_across_backends(name, factory):
    """>= 50 randomized instances per scheduler, mixed int/Fraction times:
    the schedule (start time of every job) must be identical."""
    checked = 0
    seed = 0
    while checked < 55:
        seed += 1
        inst = random_resa(seed)
        if seed % 2 == 0:
            inst = _fractionalized(inst, seed)
        if name == "shelf-ff" and any(j.release > 0 for j in inst.jobs):
            continue
        a = factory("list").schedule(inst)
        b = factory("tree").schedule(inst)
        a.verify()
        b.verify()
        assert a.starts == b.starts, f"{name} diverged on seed {seed}"
        assert a.makespan == b.makespan
        if seed % 2 != 0:  # integer-timed instances: the array backend too
            c = factory("array").schedule(inst)
            c.verify()
            assert c.starts == a.starts, (
                f"{name} (array) diverged on seed {seed}"
            )
        checked += 1


# ---------------------------------------------------------------------------
# the array backend's integer-grid contract
# ---------------------------------------------------------------------------

class TestArrayIntOnly:
    def test_construction_rejects_non_integral_times(self):
        with pytest.raises(InvalidInstanceError, match="integer"):
            ArrayProfile([0, 1.5], [3, 2])
        with pytest.raises(InvalidInstanceError, match="integer"):
            ArrayProfile([0, Fraction(1, 2)], [3, 2])

    def test_construction_rejects_non_int64_times(self):
        with pytest.raises(InvalidInstanceError, match="int64"):
            ArrayProfile([0, 2**70], [3, 2])

    def test_mutation_rejects_non_integral_times(self):
        p = ArrayProfile.constant(4)
        with pytest.raises(InvalidInstanceError, match="integer"):
            p.reserve(Fraction(1, 2), 1, 1)
        with pytest.raises(InvalidInstanceError, match="integer"):
            p.add(0, 1.5, 1)
        with pytest.raises(InvalidInstanceError, match="integer"):
            p.try_reserve(0.5, 1, 1)
        with pytest.raises(InvalidInstanceError, match="integer"):
            p.reserve_many([(Fraction(1, 3), 1, 1)])
        assert p == ArrayProfile.constant(4)  # all loud failures, no state

    def test_queries_accept_any_numeric(self):
        p = ArrayProfile.from_segments([(0, 4), (2, 1), (5, 4)])
        assert p.capacity_at(Fraction(5, 2)) == 1
        assert p.min_capacity(1.5, 3.5) == 1
        assert p.max_capacity_between(Fraction(1, 2), 6) == 4
        assert p.area(Fraction(3, 2), Fraction(5, 2)) == Fraction(5, 2)
        assert p.earliest_fit(4, 2, after=Fraction(7, 2)) == 5

    def test_cheap_prune_flag_and_offset_compaction(self):
        assert ArrayProfile.CHEAP_PRUNE is True
        assert not getattr(ListProfile, "CHEAP_PRUNE", False)
        p = ArrayProfile.constant(8)
        t = 0
        for k in range(2000):
            p.reserve(t, 3, 1)
            t += 5
            p.prune_before(t)  # O(1) offset bump per event
            assert len(p.breakpoints) <= 4
        # the dead prefix must have been reclaimed along the way
        assert len(p._times) < 2000

    def test_fast_mutators_validate_like_reserve(self):
        """try_reserve/reserve_fitting skip only the capacity recheck —
        argument validation must match reserve (review regression)."""
        p = ArrayProfile.constant(4)
        with pytest.raises(InvalidInstanceError, match="non-negative"):
            p.try_reserve(0, 5, -2)
        with pytest.raises(InvalidInstanceError, match="non-negative"):
            p.reserve_fitting(0, 5, -2)
        with pytest.raises(InvalidInstanceError):
            p.try_reserve(-1, 5, 1)
        with pytest.raises(InvalidInstanceError):
            p.try_reserve(0, 0, 1)
        assert p == ArrayProfile.constant(4)

    def test_mutations_reject_int64_overflow(self):
        """Out-of-range integer times must raise the backend's loud
        error, never a raw OverflowError (review regression)."""
        p = ArrayProfile.constant(4)
        for fn in (p.reserve, p.add, p.try_reserve, p.reserve_fitting):
            with pytest.raises(InvalidInstanceError, match="int64"):
                fn(2**70, 5, 1)
            with pytest.raises(InvalidInstanceError, match="int64"):
                fn(2**62, 2**62, 1)
        assert p == ArrayProfile.constant(4)
        # loud even when the capacity screen would fail first
        narrow = ArrayProfile.constant(1)
        with pytest.raises(InvalidInstanceError, match="int64"):
            narrow.try_reserve(2**70, 5, 2)

    def test_segment_count_matches_breakpoints(self):
        for cls in BACKENDS:
            p = cls([0, 4, 9], [3, 1, 5])
            assert p.segment_count() == len(p.breakpoints) == 3
            p.prune_before(5)
            assert p.segment_count() == len(p.breakpoints)

    def test_integral_subtypes_are_coerced(self):
        p = ArrayProfile.constant(3)
        p.reserve(True, 2, 1)  # bools are Integral: coerced, not rejected
        assert p.capacity_at(1) == 2
        assert p.capacity_at(0) == 3
