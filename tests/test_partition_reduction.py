"""Tests for the PARTITION <-> two-machine RIGIDSCHEDULING equivalence
(Section 2.1, footnote 1)."""

import pytest

from repro.algorithms import branch_and_bound
from repro.errors import InvalidInstanceError
from repro.theory import (
    partition_target,
    partition_to_rigid,
    schedule_solves_partition,
    solve_partition,
)


class TestForwardDirection:
    def test_yes_instance_achieves_half_sum(self):
        vals = [3, 1, 1, 2, 3, 2]  # sum 12, many partitions
        inst = partition_to_rigid(vals)
        assert inst.m == 2
        result = branch_and_bound(inst)
        assert result.makespan == partition_target(vals) == 6

    def test_no_instance_exceeds_half_sum(self):
        vals = [10, 1, 1]  # sum 12, but 10 cannot be balanced
        inst = partition_to_rigid(vals)
        assert branch_and_bound(inst).makespan == 10 > partition_target(vals)

    def test_odd_sum_never_tight(self):
        vals = [2, 2, 3]
        target = partition_target(vals)
        assert target * 2 == 7
        assert branch_and_bound(partition_to_rigid(vals)).makespan > target


class TestConverseDirection:
    def test_certificate_extraction(self):
        vals = [4, 3, 2, 5, 1, 3]  # sum 18
        assert solve_partition(vals) is not None
        inst = partition_to_rigid(vals)
        result = branch_and_bound(inst)
        assert result.makespan == 9
        cert = schedule_solves_partition(result.schedule, vals)
        assert cert is not None
        left, right = cert
        assert sum(left) == sum(right) == 9
        assert sorted(left + right) == sorted(vals)

    def test_non_tight_schedule_yields_none(self):
        vals = [10, 1, 1]
        inst = partition_to_rigid(vals)
        result = branch_and_bound(inst)
        assert schedule_solves_partition(result.schedule, vals) is None

    def test_agreement_with_dp_solver(self):
        """The scheduling answer and the subset-sum DP always agree."""
        cases = [
            [1, 2, 3],
            [1, 2, 4],
            [5, 5, 5, 5],
            [7, 3, 5, 1, 8, 2, 6, 4],
            [9, 9, 1],
        ]
        for vals in cases:
            dp_yes = solve_partition(vals) is not None
            sched_yes = (
                branch_and_bound(partition_to_rigid(vals)).makespan
                == partition_target(vals)
            )
            assert dp_yes == sched_yes, vals


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(InvalidInstanceError):
            partition_to_rigid([])

    def test_nonpositive_rejected(self):
        with pytest.raises(InvalidInstanceError):
            partition_to_rigid([1, 0])
