"""Tests for the command-line interface (direct main() calls)."""

import json

import pytest

from repro.cli import main
from repro.core import load_instance, load_schedule
from repro.workloads import SAMPLE_SWF


@pytest.fixture
def instance_file(tmp_path):
    path = str(tmp_path / "inst.json")
    code = main(
        ["generate", "-n", "6", "-m", "8", "--alpha", "1/2",
         "--seed", "3", "-o", path]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_valid_instance(self, instance_file):
        inst = load_instance(instance_file)
        assert inst.m == 8
        assert inst.n == 6
        inst.validate_alpha(0.5)

    def test_stdout_mode(self, capsys):
        assert main(["generate", "-n", "3", "-m", "4"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["m"] == 4

    def test_feitelson_model(self, tmp_path):
        path = str(tmp_path / "f.json")
        assert main(
            ["generate", "--model", "feitelson", "-n", "5", "-m", "16",
             "-o", path]
        ) == 0
        assert load_instance(path).n == 5


class TestSchedule:
    def test_schedule_roundtrip(self, instance_file, tmp_path, capsys):
        out_path = str(tmp_path / "sched.json")
        code = main(
            ["schedule", instance_file, "-a", "lsrc-lpt", "-o", out_path]
        )
        assert code == 0
        schedule = load_schedule(out_path)
        schedule.verify()
        assert "Cmax" in capsys.readouterr().out

    def test_unknown_algorithm(self, instance_file, capsys):
        code = main(["schedule", instance_file, "-a", "psychic"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["schedule", "/nonexistent.json"]) == 1


class TestOptimal:
    def test_optimal(self, instance_file, capsys):
        assert main(["optimal", instance_file]) == 0
        out = capsys.readouterr().out
        assert "proven=True" in out


class TestBounds:
    def test_bounds_table(self, capsys):
        assert main(["bounds", "1/2", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "13/4" in out  # B1 at alpha = 1/2
        assert "upper" in out


class TestFigures:
    @pytest.mark.parametrize("number", [1, 2, 3, 4])
    def test_each_figure_renders(self, number, capsys):
        assert main(["figure", str(number), "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_unknown_figure(self, capsys):
        assert main(["figure", "9"]) == 2

    def test_empirical_rejected_outside_figure_4(self, capsys):
        assert main(["figure", "2", "--empirical"]) == 2
        assert "figure 4 only" in capsys.readouterr().err


class TestGanttAndSimulate:
    def test_gantt(self, instance_file, tmp_path, capsys):
        sched_path = str(tmp_path / "s.json")
        main(["schedule", instance_file, "-o", sched_path])
        capsys.readouterr()
        svg_path = str(tmp_path / "s.svg")
        assert main(["gantt", sched_path, "--svg", svg_path]) == 0
        out = capsys.readouterr().out
        assert "Gantt" in out
        assert open(svg_path).read().startswith("<svg")

    @pytest.mark.parametrize("policy", ["fcfs", "easy", "conservative", "greedy"])
    def test_simulate(self, instance_file, policy, capsys):
        assert main(["simulate", instance_file, "-p", policy]) == 0
        assert "Cmax" in capsys.readouterr().out

    def test_simulate_unknown_policy_is_loud(self, instance_file, capsys):
        # no argparse choices: the policy registry owns the name check, so
        # runtime-registered policies stay addressable
        assert main(["simulate", instance_file, "-p", "psychic"]) == 1
        assert "known policies" in capsys.readouterr().err


class TestSWFAndInfo:
    def test_swf_conversion(self, tmp_path, capsys):
        trace = tmp_path / "t.swf"
        trace.write_text(SAMPLE_SWF)
        out_path = str(tmp_path / "converted.json")
        assert main(["swf", str(trace), "-o", out_path]) == 0
        inst = load_instance(out_path)
        assert inst.n == 8

    def test_info(self, instance_file, capsys):
        assert main(["info", instance_file]) == 0
        out = capsys.readouterr().out
        assert "alpha window" in out
        assert "lower bound" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "lsrc" in out and "fcfs" in out


class TestRunAndList:
    @pytest.fixture
    def spec_file(self, tmp_path):
        from repro.run import ExperimentSpec, WorkloadSpec, save_spec

        spec = ExperimentSpec(
            name="cli-smoke",
            algorithms=("lsrc", "online:easy"),
            workloads=(
                WorkloadSpec("alpha-uniform", params={"n": 5, "m": 8},
                             grid={"alpha": [0.5]}),
            ),
            seeds=(0, 1),
            metrics=("makespan", "ratio_lb"),
        )
        path = str(tmp_path / "spec.json")
        save_spec(spec, path)
        return path

    def test_run_and_resume(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "rows.jsonl")
        assert main(["run", spec_file, "-o", store, "-q"]) == 0
        out = capsys.readouterr().out
        assert "4 rows (4 computed, 0 resumed)" in out
        assert "cli-smoke" in out
        # second invocation resumes every point
        assert main(["run", spec_file, "-o", store, "-q"]) == 0
        assert "(0 computed, 4 resumed)" in capsys.readouterr().out
        assert len(open(store).read().splitlines()) == 4

    def test_run_fresh_recomputes(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "rows.jsonl")
        main(["run", spec_file, "-o", store, "-q"])
        capsys.readouterr()
        assert main(["run", spec_file, "-o", store, "-q", "--fresh"]) == 0
        assert "(4 computed, 0 resumed)" in capsys.readouterr().out

    def test_run_default_store_next_to_spec(self, spec_file, capsys):
        assert main(["run", spec_file, "-q"]) == 0
        assert spec_file.replace(".json", ".results.jsonl") in \
            capsys.readouterr().out

    def test_run_rejects_bad_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"format\": \"nope\"}")
        assert main(["run", str(bad)]) == 1
        assert "unsupported spec format" in capsys.readouterr().err

    @pytest.mark.parametrize("kind,expected", [
        ("algorithms", "lsrc"),
        ("workloads", "alpha-uniform"),
        ("policies", "conservative"),
        ("metrics", "ratio_lb"),
        ("backends", "tree"),
    ])
    def test_list_kinds(self, kind, expected, capsys):
        assert main(["list", "--kind", kind]) == 0
        assert expected in capsys.readouterr().out.split()

    def test_list_all_sections(self, capsys):
        assert main(["list", "--kind", "all"]) == 0
        out = capsys.readouterr().out
        for section in ("algorithms:", "workloads:", "policies:",
                        "metrics:", "backends:"):
            assert section in out


class TestReplayJournalValidation:
    """Journal-dependent replay flags are usage errors without --journal."""

    def test_resume_requires_journal(self, capsys):
        assert main(["replay", "synth:steady:10", "--resume"]) == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_snapshot_interval_requires_journal(self, capsys):
        code = main(
            ["replay", "synth:steady:10", "-m", "8", "--snapshot-interval", "5"]
        )
        assert code == 2
        assert "--snapshot-interval requires --journal" in \
            capsys.readouterr().err


class TestServeValidation:
    """`repro serve` usage errors exit 2 before touching the journal."""

    def test_fresh_serve_requires_machines(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "j")]) == 2
        assert "requires -m/--machines" in capsys.readouterr().err

    @pytest.mark.parametrize("flags", [
        ["-m", "8"],
        ["-p", "fcfs"],
        ["--window", "10"],
        ["--snapshot-interval", "5"],
        ["-m", "8", "--window", "10"],
    ], ids=lambda f: f[0])
    def test_resume_rejects_config_flags(self, tmp_path, flags, capsys):
        assert main(["serve", str(tmp_path / "j"), "--resume", *flags]) == 2
        err = capsys.readouterr().err
        assert "--resume takes its configuration from the journal" in err
        assert flags[0].lstrip("-").split()[0] in err.replace("/", " ")
