"""Tests for the Graham timing-anomaly explorer."""

import pytest

from repro.algorithms import ListScheduler
from repro.analysis import (
    capacity_anomaly,
    classic_capacity_anomaly,
    find_anomalies,
    removal_anomaly,
    shortening_anomaly,
)
from repro.core import RigidInstance
from repro.errors import InvalidInstanceError


class TestWitnessVerification:
    def test_classic_capacity_witness(self):
        witness = classic_capacity_anomaly()
        assert witness.kind == "add-capacity"
        assert witness.perturbed_makespan > witness.base_makespan
        assert witness.regression > 0
        # replay both sides with the real scheduler
        base = ListScheduler().schedule(witness.base_instance)
        pert = ListScheduler().schedule(witness.perturbed_instance)
        assert base.makespan == witness.base_makespan
        assert pert.makespan == witness.perturbed_makespan
        assert witness.perturbed_instance.m > witness.base_instance.m

    def test_shortening_validation(self, tiny_rigid):
        with pytest.raises(InvalidInstanceError):
            shortening_anomaly(tiny_rigid, 0, 99)  # not shorter
        with pytest.raises(InvalidInstanceError):
            shortening_anomaly(tiny_rigid, 0, 0)   # not positive

    def test_removal_validation(self, tiny_rigid):
        with pytest.raises(InvalidInstanceError):
            removal_anomaly(tiny_rigid, "ghost")

    def test_capacity_validation(self, tiny_rigid):
        with pytest.raises(InvalidInstanceError):
            capacity_anomaly(tiny_rigid, extra=0)

    def test_no_witness_returns_none(self):
        # a single job cannot exhibit any anomaly
        inst = RigidInstance.from_specs(2, [(5, 1)])
        assert capacity_anomaly(inst) is None
        assert removal_anomaly(inst, 0) is None
        assert shortening_anomaly(inst, 0, 2) is None


class TestSearch:
    def test_search_finds_anomalies(self):
        """2000 trials find several witnesses."""
        witnesses = find_anomalies(n_trials=2000, seed=1)
        assert witnesses, "expected at least one anomaly in 2000 trials"
        kinds = {w.kind for w in witnesses}
        assert kinds <= {"shorten", "remove", "add-capacity"}

    def test_search_witnesses_are_genuine(self):
        for witness in find_anomalies(n_trials=1500, seed=2)[:5]:
            base = ListScheduler().schedule(witness.base_instance)
            pert = ListScheduler().schedule(witness.perturbed_instance)
            assert pert.makespan > base.makespan
            # the perturbation really is favourable
            if witness.kind == "shorten":
                base_work = witness.base_instance.total_work
                pert_work = witness.perturbed_instance.total_work
                assert pert_work < base_work
            elif witness.kind == "remove":
                assert (
                    witness.perturbed_instance.n
                    == witness.base_instance.n - 1
                )
            else:
                assert witness.perturbed_instance.m > witness.base_instance.m

    def test_search_deterministic(self):
        a = find_anomalies(n_trials=400, seed=3)
        b = find_anomalies(n_trials=400, seed=3)
        assert [(w.kind, str(w.base_makespan)) for w in a] == [
            (w.kind, str(w.base_makespan)) for w in b
        ]

    def test_reservation_free_anomalies_also_exist(self):
        """Rigid widths alone already break monotonicity: the search with
        reservations disabled still finds genuine witnesses (contrast
        with sequential independent tasks, where greedy is monotone)."""
        witnesses = find_anomalies(
            n_trials=800, seed=4, max_reservations=0
        )
        assert witnesses
        for w in witnesses:
            assert w.base_instance.n_reservations == 0
            assert w.perturbed_makespan > w.base_makespan

    def test_description_mentions_values(self):
        witness = classic_capacity_anomaly()
        assert str(witness.base_makespan) in witness.description
        assert str(witness.perturbed_makespan) in witness.description
