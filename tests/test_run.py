"""Tests for the experiment layer: registries, specs, runner, store."""

import json
import warnings
from fractions import Fraction

import pytest

from repro.core import (
    METRICS,
    Registry,
    RegistryCollisionWarning,
    evaluate_metrics,
    summarize,
)
from repro.core.serialize import load_spec, save_spec
from repro.errors import (
    InvalidInstanceError,
    SchedulingError,
    TraceFormatError,
)
from repro.run import (
    ExperimentSpec,
    JsonlStore,
    Runner,
    WorkloadSpec,
    dumps_spec,
    expand_points,
    loads_spec,
    mean_metric_series,
    paper_grid_spec,
    run_experiment,
    summary_rows,
)
from repro.simulation import POLICIES, available_policies, get_policy
from repro.workloads import available_workloads, make_workload, register_workload


def tiny_spec(**overrides):
    base = dict(
        name="tiny",
        algorithms=("lsrc", "online:fcfs"),
        workloads=(
            WorkloadSpec(
                "alpha-uniform",
                params={"n": 6, "m": 8},
                grid={"alpha": [Fraction(1, 4), Fraction(1, 2)]},
            ),
        ),
        seeds=(0, 1),
        metrics=("makespan", "ratio_lb"),
        profile_backends=("list",),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestGenericRegistry:
    def test_register_get_and_mapping_protocol(self):
        reg = Registry("gadget")
        reg.register("a", 1, overwrite=True)
        reg.register("b", 2, overwrite=True)
        assert reg.get("a") == 1 and reg["b"] == 2
        assert "a" in reg and "zz" not in reg
        assert list(reg) == ["a", "b"] and len(reg) == 2
        assert reg.items() == [("a", 1), ("b", 2)]

    def test_decorator_registration(self):
        reg = Registry("fn")

        @reg.register("f")
        def f():
            return 42

        assert reg.get("f") is f

    def test_unknown_name_lists_known(self):
        reg = Registry("gadget", error=SchedulingError)
        reg.register("known", 1, overwrite=True)
        with pytest.raises(SchedulingError, match="known gadgets: known"):
            reg.get("mystery")

    def test_implicit_collision_warns_but_overwrites(self):
        reg = Registry("gadget")
        reg.register("x", 1)
        with pytest.warns(RegistryCollisionWarning):
            reg.register("x", 2)
        assert reg.get("x") == 2

    def test_explicit_overwrite_is_silent(self):
        reg = Registry("gadget")
        reg.register("x", 1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            reg.register("x", 2, overwrite=True)
        assert reg.get("x") == 2

    def test_overwrite_false_raises(self):
        reg = Registry("gadget", error=SchedulingError)
        reg.register("x", 1)
        with pytest.raises(SchedulingError, match="already registered"):
            reg.register("x", 2, overwrite=False)

    def test_reregistering_same_object_is_silent(self):
        reg = Registry("gadget")
        obj = object()
        reg.register("x", obj)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            reg.register("x", obj)  # idempotent module reload


class TestWorkloadRegistry:
    def test_builtins_present(self):
        names = available_workloads()
        for expected in ("uniform", "alpha-uniform", "feitelson", "staircase"):
            assert expected in names

    def test_make_workload_deterministic_in_seed(self):
        a = make_workload("alpha-uniform", n=6, m=8, alpha=0.5, seed=3)
        b = make_workload("alpha-uniform", n=6, m=8, alpha=0.5, seed=3)
        c = make_workload("alpha-uniform", n=6, m=8, alpha=0.5, seed=4)
        assert a.jobs == b.jobs and a.reservations == b.reservations
        assert a.jobs != c.jobs or a.reservations != c.reservations

    def test_unknown_workload(self):
        with pytest.raises(InvalidInstanceError, match="unknown workload"):
            make_workload("psychic")

    def test_bad_params_are_loud(self):
        with pytest.raises(InvalidInstanceError, match="rejected parameters"):
            make_workload("uniform", nonsense=True)

    def test_third_party_registration(self):
        register_workload(
            "test-constant",
            lambda seed=0, **_: make_workload("uniform", n=2, m=2, seed=seed),
            overwrite=True,
        )
        assert make_workload("test-constant", seed=1).n == 2


class TestPolicyRegistry:
    def test_policies_registered(self):
        assert available_policies() == ["conservative", "easy", "fcfs", "greedy"]

    def test_mapping_compatibility(self):
        # POLICIES replaced a plain dict; the old idioms must keep working
        assert "greedy" in POLICIES
        assert sorted(POLICIES) == available_policies()
        assert POLICIES["fcfs"] is get_policy("fcfs")

    def test_unknown_policy_message(self):
        with pytest.raises(SchedulingError, match="known policies"):
            get_policy("psychic")


class TestMetricRegistry:
    def test_every_summary_field_is_addressable(self, tiny_rigid=None):
        from repro.algorithms import list_schedule

        inst = make_workload("uniform", n=5, m=4, seed=0)
        schedule = list_schedule(inst)
        metrics = summarize(schedule).as_dict()
        values = evaluate_metrics(schedule, metrics.keys())
        assert values == metrics

    def test_ratio_lb(self):
        from repro.algorithms import list_schedule

        inst = make_workload("uniform", n=5, m=4, seed=0)
        schedule = list_schedule(inst)
        ratio = evaluate_metrics(schedule, ["ratio_lb"])["ratio_lb"]
        assert ratio >= 1.0 - 1e-9

    def test_unknown_metric(self):
        with pytest.raises(InvalidInstanceError, match="unknown metric"):
            METRICS.get("vibes")

    def test_override_of_builtin_is_honoured(self):
        from repro.algorithms import list_schedule
        from repro.core import register_metric
        from repro.core.metrics import _BUILTIN_EXTRACTORS

        inst = make_workload("uniform", n=4, m=4, seed=0)
        schedule = list_schedule(inst)
        original = METRICS.get("makespan")
        try:
            register_metric("makespan", lambda s: -1.0, overwrite=True)
            assert evaluate_metrics(schedule, ["makespan"]) == {"makespan": -1.0}
        finally:
            register_metric("makespan", original, overwrite=True)
        assert original is _BUILTIN_EXTRACTORS["makespan"]
        assert evaluate_metrics(schedule, ["makespan"])["makespan"] == \
            schedule.makespan


class TestExperimentSpec:
    def test_json_round_trip_exact(self):
        spec = tiny_spec()
        restored = loads_spec(dumps_spec(spec))
        assert restored == spec
        # Fractions must survive exactly, not as floats
        assert restored.workloads[0].grid["alpha"][0] == Fraction(1, 4)
        assert isinstance(restored.workloads[0].grid["alpha"][0], Fraction)

    def test_file_round_trip_via_core_serialize(self, tmp_path):
        path = str(tmp_path / "spec.json")
        spec = tiny_spec()
        save_spec(spec, path)
        assert load_spec(path) == spec

    def test_repeats_shorthand(self):
        spec = loads_spec(json.dumps({
            "format": "repro-spec/1",
            "name": "r",
            "algorithms": ["lsrc"],
            "workloads": ["uniform"],
            "repeats": 3,
        }))
        assert spec.seeds == (0, 1, 2)
        # bare string workloads are also accepted
        assert spec.workloads[0] == WorkloadSpec("uniform")

    def test_unknown_fields_rejected(self):
        # a typo ("seed" for "seeds") must not silently shrink the grid
        with pytest.raises(TraceFormatError, match="unknown spec field"):
            loads_spec(json.dumps({
                "format": "repro-spec/1", "algorithms": ["lsrc"],
                "workloads": ["uniform"], "seed": [0, 1, 2],
            }))
        with pytest.raises(TraceFormatError, match="unknown workload field"):
            loads_spec(json.dumps({
                "format": "repro-spec/1", "algorithms": ["lsrc"],
                "workloads": [{"name": "uniform", "parms": {"n": 3}}],
            }))

    def test_bad_documents(self):
        with pytest.raises(TraceFormatError, match="unsupported spec format"):
            loads_spec(json.dumps({"format": "nope"}))
        with pytest.raises(TraceFormatError, match="not both"):
            loads_spec(json.dumps({
                "format": "repro-spec/1", "algorithms": ["lsrc"],
                "workloads": ["uniform"], "seeds": [0], "repeats": 2,
            }))
        with pytest.raises(InvalidInstanceError, match="at least one"):
            ExperimentSpec(name="x", algorithms=(), workloads=("uniform",))

    def test_validate_rejects_unknown_names(self):
        with pytest.raises(SchedulingError, match="unknown scheduler"):
            tiny_spec(algorithms=("psychic",)).validate()
        with pytest.raises(SchedulingError, match="unknown policy"):
            tiny_spec(algorithms=("online:psychic",)).validate()
        with pytest.raises(InvalidInstanceError, match="unknown workload"):
            tiny_spec(workloads=(WorkloadSpec("psychic"),)).validate()
        with pytest.raises(InvalidInstanceError, match="unknown metric"):
            tiny_spec(metrics=("vibes",)).validate()
        with pytest.raises(InvalidInstanceError, match="unknown profile backend"):
            tiny_spec(profile_backends=("abacus",)).validate()

    def test_param_grid_overlap_rejected(self):
        with pytest.raises(InvalidInstanceError, match="both params and grid"):
            WorkloadSpec("uniform", params={"n": 3}, grid={"n": [1, 2]})

    def test_duplicate_factor_values_rejected(self):
        # typo'd duplicates would silently shrink (or double) the grid
        with pytest.raises(InvalidInstanceError, match="repeats a value"):
            tiny_spec(seeds=(0, 0))
        with pytest.raises(InvalidInstanceError, match="repeats a value"):
            tiny_spec(algorithms=("lsrc", "lsrc"))
        with pytest.raises(InvalidInstanceError, match="repeats a value"):
            WorkloadSpec("uniform", grid={"alpha": [0.5, 0.5]})

    def test_n_points(self):
        assert tiny_spec().n_points == 2 * 2 * 2  # algos x alphas x seeds


class TestPointExpansion:
    def test_deterministic_order_and_keys(self):
        spec = tiny_spec()
        a = list(expand_points(spec))
        b = list(expand_points(spec))
        assert [p.key for p in a] == [p.key for p in b]
        assert len({p.key for p in a}) == len(a) == spec.n_points
        assert [p.index for p in a] == list(range(len(a)))

    def test_key_ignores_param_declaration_order(self):
        from repro.run.runner import ExperimentPoint

        p1 = ExperimentPoint(0, "uniform", {"n": 3, "m": 4}, "lsrc",
                             "list", 0, ("makespan",))
        p2 = ExperimentPoint(7, "uniform", {"m": 4, "n": 3}, "lsrc",
                             "list", 0, ("makespan",))
        assert p1.key == p2.key
        assert p1.derived_seed == p2.derived_seed

    def test_derived_seed_differs_across_points(self):
        spec = tiny_spec()
        seeds = {(p.workload, tuple(sorted(p.params.items())), p.seed):
                 p.derived_seed for p in expand_points(spec)}
        assert len(set(seeds.values())) == len(seeds)


class TestRunner:
    def test_serial_and_parallel_rows_identical(self, tmp_path):
        spec = tiny_spec()
        serial = str(tmp_path / "serial.jsonl")
        parallel = str(tmp_path / "parallel.jsonl")
        r1 = Runner(jobs=1, store=serial).run(spec)
        r2 = Runner(jobs=2, store=parallel).run(spec)
        assert r1.rows == r2.rows
        # byte-identical files, not just equal dicts
        assert open(serial).read() == open(parallel).read()
        assert r1.computed == r2.computed == spec.n_points

    def test_resume_skips_completed_points(self, tmp_path):
        spec = tiny_spec()
        store = str(tmp_path / "rows.jsonl")
        first = Runner(jobs=1, store=store).run(spec)
        assert (first.computed, first.skipped) == (spec.n_points, 0)
        second = Runner(jobs=1, store=store).run(spec)
        assert (second.computed, second.skipped) == (0, spec.n_points)
        assert second.rows == first.rows

    def test_partial_resume_recomputes_only_missing(self, tmp_path):
        spec = tiny_spec()
        store = str(tmp_path / "rows.jsonl")
        full = Runner(jobs=1, store=store).run(spec)
        lines = open(store).read().splitlines()
        with open(store, "w") as fh:
            fh.write("\n".join(lines[:3]) + "\n")
        resumed = Runner(jobs=1, store=store).run(spec)
        assert resumed.computed == spec.n_points - 3
        assert resumed.skipped == 3
        assert resumed.rows == full.rows

    def test_grown_spec_resumes_old_points(self, tmp_path):
        store = str(tmp_path / "rows.jsonl")
        small = tiny_spec(seeds=(0,))
        Runner(jobs=1, store=store).run(small)
        grown = tiny_spec(seeds=(0, 1, 2))
        result = Runner(jobs=1, store=store).run(grown)
        assert result.skipped == small.n_points
        assert result.computed == grown.n_points - small.n_points

    def test_runs_without_store(self):
        result = run_experiment(tiny_spec(seeds=(0,)))
        assert len(result.rows) == 4
        assert result.store_path is None

    def test_online_and_offline_agree_on_offline_instances(self):
        # the online greedy policy reproduces offline LSRC on release-0
        # instances — through the experiment layer this time
        spec = tiny_spec(algorithms=("lsrc", "online:greedy"), seeds=(0,))
        result = run_experiment(spec)
        lsrc = result.filtered(algorithm="lsrc")
        online = result.filtered(algorithm="online:greedy")
        assert [r["makespan"] for r in lsrc] == [r["makespan"] for r in online]

    def test_filtered_reaches_into_params_and_decodes(self):
        result = run_experiment(tiny_spec(seeds=(0,)))
        quarter = result.filtered(alpha=Fraction(1, 4))
        assert len(quarter) == 2  # two algorithms at alpha=1/4
        # Fractions equal their float value, so floats match too
        assert result.filtered(alpha=0.25) == quarter

    def test_added_metric_triggers_recompute(self, tmp_path):
        store = str(tmp_path / "rows.jsonl")
        small = tiny_spec(metrics=("makespan",))
        Runner(jobs=1, store=store).run(small)
        grown = tiny_spec(metrics=("makespan", "ratio_lb"))
        result = Runner(jobs=1, store=store).run(grown)
        # stored rows lack ratio_lb, so nothing counts as resumed
        assert (result.computed, result.skipped) == (grown.n_points, 0)
        assert all("ratio_lb" in row for row in result.rows)
        # and a further re-run of the grown spec resumes everything
        again = Runner(jobs=1, store=store).run(grown)
        assert (again.computed, again.skipped) == (0, grown.n_points)

    def test_resume_false_truncates_store(self, tmp_path):
        spec = tiny_spec()
        store = str(tmp_path / "rows.jsonl")
        Runner(jobs=1, store=store).run(spec)
        result = Runner(jobs=1, store=store).run(spec, resume=False)
        assert (result.computed, result.skipped) == (spec.n_points, 0)
        # no duplicate rows accumulate in the file
        assert len(open(store).read().splitlines()) == spec.n_points

    def test_progress_callback(self):
        calls = []
        spec = tiny_spec(algorithms=("lsrc",), seeds=(0,))
        Runner(progress=lambda done, total, row: calls.append((done, total))).run(spec)
        assert calls == [(1, 2), (2, 2)]

    def test_jobs_validation(self):
        with pytest.raises(InvalidInstanceError):
            Runner(jobs=0)


class TestJsonlStore:
    def test_torn_final_line_is_truncated(self, tmp_path):
        store = JsonlStore(str(tmp_path / "rows.jsonl"))
        store.append({"key": "aa", "v": 1})
        with open(store.path) as fh:
            intact = fh.read()
        with open(store.path, "a") as fh:
            fh.write('{"key": "bb", "v":')  # torn write
        with pytest.warns(UserWarning, match="torn"):
            rows = store.load()
        assert [r["key"] for r in rows] == ["aa"]
        # the partial line is physically gone: the next append starts a
        # fresh line instead of concatenating onto the wreckage
        with open(store.path) as fh:
            assert fh.read() == intact
        store.append({"key": "bb", "v": 2})
        assert store.keys() == {"aa", "bb"}

    def test_missing_file(self, tmp_path):
        store = JsonlStore(str(tmp_path / "absent.jsonl"))
        assert store.load() == [] and store.keys() == set()


class TestPresets:
    def test_paper_grid_spec_validates(self):
        paper_grid_spec().validate()

    def test_summary_and_series(self):
        spec = paper_grid_spec(alphas=[0.5], algorithms=["lsrc"],
                               seeds=range(2), n=8, m=16)
        result = run_experiment(spec)
        table = summary_rows(result)
        assert table[0]["algorithm"] == "lsrc" and table[0]["n"] == 2
        series = mean_metric_series(result, "ratio_lb", algorithm="lsrc")
        assert len(series) == 1 and series[0][0] == 0.5
        assert series[0][1] >= 1.0 - 1e-9


class TestRunSweepShim:
    def test_deprecation_and_equivalence(self):
        from repro.analysis import run_sweep

        with pytest.warns(DeprecationWarning, match="ExperimentSpec"):
            result = run_sweep(
                {"a": [1, 2], "b": ["x", "y"]},
                lambda point: {"echo": (point["a"], point["b"])},
                repeats=2,
            )
        assert len(result.rows) == 8
        assert result.rows[0]["echo"] == (1, "x")
        assert result.rows[0]["repeat"] == 0
