"""Unit tests for jobs and reservations (repro.core.job)."""

import pytest
from fractions import Fraction

from repro.core import Job, Reservation, make_jobs, make_reservations
from repro.errors import InvalidInstanceError


class TestJobValidation:
    def test_basic_construction(self):
        job = Job(id=1, p=3, q=2)
        assert job.p == 3
        assert job.q == 2
        assert job.release == 0

    def test_area(self):
        assert Job(id=1, p=3, q=2).area == 6

    def test_fractional_time(self):
        job = Job(id=1, p=Fraction(1, 6), q=25)
        assert job.area == Fraction(25, 6)

    def test_zero_processing_time_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(id=1, p=0, q=1)

    def test_negative_processing_time_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(id=1, p=-2, q=1)

    def test_zero_width_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(id=1, p=1, q=0)

    def test_non_integer_width_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(id=1, p=1, q=1.5)

    def test_bool_width_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(id=1, p=1, q=True)

    def test_negative_release_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(id=1, p=1, q=1, release=-1)

    def test_non_numeric_time_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(id=1, p="fast", q=1)

    def test_label_defaults_to_id(self):
        assert Job(id=7, p=1, q=1).label == "7"
        assert Job(id=7, p=1, q=1, name="demo").label == "demo"

    def test_with_release(self):
        job = Job(id=1, p=2, q=1)
        shifted = job.with_release(5)
        assert shifted.release == 5
        assert job.release == 0  # original untouched (frozen)

    def test_scaled(self):
        job = Job(id=1, p=Fraction(1, 6), q=3, release=Fraction(1, 2))
        scaled = job.scaled(6)
        assert scaled.p == 1
        assert scaled.release == 3
        assert scaled.q == 3

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(InvalidInstanceError):
            Job(id=1, p=1, q=1).scaled(0)

    def test_frozen(self):
        job = Job(id=1, p=1, q=1)
        with pytest.raises(AttributeError):
            job.p = 2


class TestReservationValidation:
    def test_basic(self):
        res = Reservation(id="R", start=2, p=3, q=4)
        assert res.end == 5
        assert res.area == 12

    def test_overlaps(self):
        res = Reservation(id="R", start=2, p=3, q=1)
        assert not res.overlaps(1)
        assert res.overlaps(2)
        assert res.overlaps(4)
        assert not res.overlaps(5)  # half-open interval

    def test_zero_duration_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Reservation(id="R", start=0, p=0, q=1)

    def test_negative_start_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Reservation(id="R", start=-1, p=1, q=1)

    def test_zero_width_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Reservation(id="R", start=0, p=1, q=0)

    def test_scaled(self):
        res = Reservation(id="R", start=1, p=2, q=3).scaled(6)
        assert res.start == 6
        assert res.p == 12
        assert res.end == 18

    def test_label(self):
        assert Reservation(id=3, start=0, p=1, q=1).label == "R3"


class TestFactories:
    def test_make_jobs_two_fields(self):
        jobs = make_jobs([(3, 2), (1, 1)])
        assert [(j.p, j.q, j.release) for j in jobs] == [(3, 2, 0), (1, 1, 0)]
        assert [j.id for j in jobs] == [0, 1]

    def test_make_jobs_three_fields(self):
        jobs = make_jobs([(3, 2, 5)])
        assert jobs[0].release == 5

    def test_make_jobs_start_id(self):
        jobs = make_jobs([(1, 1)], start_id=10)
        assert jobs[0].id == 10

    def test_make_jobs_bad_arity(self):
        with pytest.raises(InvalidInstanceError):
            make_jobs([(1,)])

    def test_make_reservations(self):
        res = make_reservations([(2, 3, 4)])
        assert res[0].start == 2 and res[0].p == 3 and res[0].q == 4

    def test_make_reservations_bad_arity(self):
        with pytest.raises(InvalidInstanceError):
            make_reservations([(1, 2)])
