"""Tests for JSON serialisation of instances and schedules."""

import json
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import list_schedule
from repro.core import (
    Job,
    ReservationInstance,
    RigidInstance,
    dumps_instance,
    dumps_schedule,
    load_instance,
    load_schedule,
    loads_instance,
    loads_schedule,
    save_instance,
    save_schedule,
)
from repro.errors import TraceFormatError
from repro.theory import proposition2_instance

from conftest import random_resa


class TestInstanceRoundtrip:
    def test_basic(self, tiny_resa):
        text = dumps_instance(tiny_resa)
        again = loads_instance(text)
        assert again.m == tiny_resa.m
        assert again.n == tiny_resa.n
        assert again.n_reservations == 1
        assert [(j.id, j.p, j.q) for j in again.jobs] == [
            (j.id, j.p, j.q) for j in tiny_resa.jobs
        ]

    def test_rigid_instance_accepted(self, tiny_rigid):
        again = loads_instance(dumps_instance(tiny_rigid))
        assert again.n_reservations == 0
        assert again.n == tiny_rigid.n

    def test_fraction_times_roundtrip_exactly(self):
        inst = ReservationInstance(
            m=2,
            jobs=(Job(id=0, p=Fraction(1, 3), q=1),),
            reservations=(),
        )
        again = loads_instance(dumps_instance(inst))
        assert again.jobs[0].p == Fraction(1, 3)
        assert isinstance(again.jobs[0].p, Fraction)

    def test_adversarial_instance_roundtrips(self):
        inst = proposition2_instance(5).instance
        again = loads_instance(dumps_instance(inst))
        assert again.m == inst.m
        assert {j.id for j in again.jobs} == {j.id for j in inst.jobs}
        assert again.reservations[0].q == inst.reservations[0].q

    def test_file_roundtrip(self, tmp_path, tiny_resa):
        path = save_instance(tiny_resa, str(tmp_path / "inst.json"))
        again = load_instance(path)
        assert again.n == tiny_resa.n

    def test_releases_preserved(self):
        inst = RigidInstance.from_specs(2, [(1, 1, 7)])
        again = loads_instance(dumps_instance(inst))
        assert again.jobs[0].release == 7

    def test_name_preserved(self, tiny_resa):
        again = loads_instance(dumps_instance(tiny_resa))
        assert again.name == tiny_resa.name


class TestInstanceValidationOnLoad:
    def test_bad_json(self):
        with pytest.raises(TraceFormatError):
            loads_instance("{not json")

    def test_wrong_format_marker(self):
        with pytest.raises(TraceFormatError):
            loads_instance(json.dumps({"format": "other/9", "m": 1, "jobs": []}))

    def test_missing_fields(self):
        with pytest.raises(TraceFormatError):
            loads_instance(
                json.dumps({"format": "repro-instance/1", "jobs": [{}]})
            )

    def test_model_violations_still_caught(self):
        doc = {
            "format": "repro-instance/1",
            "m": 2,
            "jobs": [{"id": 0, "p": 1, "q": 5, "release": 0}],
            "reservations": [],
        }
        with pytest.raises(Exception):
            loads_instance(json.dumps(doc))

    def test_malformed_fraction(self):
        doc = {
            "format": "repro-instance/1",
            "m": 2,
            "jobs": [{"id": 0, "p": {"num": 1}, "q": 1}],
            "reservations": [],
        }
        with pytest.raises(TraceFormatError):
            loads_instance(json.dumps(doc))

    def test_not_an_object(self):
        with pytest.raises(TraceFormatError):
            loads_instance("[1, 2, 3]")


class TestScheduleRoundtrip:
    def test_basic(self, tiny_resa):
        schedule = list_schedule(tiny_resa)
        again = loads_schedule(dumps_schedule(schedule))
        assert again.starts == schedule.starts
        assert again.makespan == schedule.makespan
        assert again.algorithm == schedule.algorithm
        again.verify()

    def test_file_roundtrip(self, tmp_path, tiny_resa):
        schedule = list_schedule(tiny_resa)
        path = save_schedule(schedule, str(tmp_path / "sched.json"))
        again = load_schedule(path)
        assert again.starts == schedule.starts

    def test_tampered_makespan_rejected(self, tiny_resa):
        schedule = list_schedule(tiny_resa)
        doc = json.loads(dumps_schedule(schedule))
        doc["makespan"] = 999
        with pytest.raises(TraceFormatError):
            loads_schedule(json.dumps(doc))

    def test_wrong_format(self):
        with pytest.raises(TraceFormatError):
            loads_schedule(json.dumps({"format": "nope"}))

    def test_self_contained(self, tiny_resa):
        """A schedule document embeds its instance completely."""
        schedule = list_schedule(tiny_resa)
        doc = json.loads(dumps_schedule(schedule))
        assert doc["instance"]["m"] == tiny_resa.m
        assert len(doc["instance"]["jobs"]) == tiny_resa.n


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_roundtrip_property(seed):
    """Any schedulable instance and its LSRC schedule survive the trip."""
    inst = random_resa(seed)
    text = dumps_instance(inst)
    again = loads_instance(text)
    assert again.m == inst.m
    assert sorted(str(j.id) for j in again.jobs) == sorted(
        str(j.id) for j in inst.jobs
    )
    schedule = list_schedule(again)
    round2 = loads_schedule(dumps_schedule(schedule))
    round2.verify()
    assert round2.makespan == schedule.makespan
