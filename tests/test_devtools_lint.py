"""The ``repro lint`` AST invariant checker.

Each rule family gets a fixture project in ``tmp_path``: a positive hit,
a clean pass, and a ``noqa`` suppression.  The RPL3xx tests additionally
lint *copies of the real profile files* and mutate them — deleting a
required override or growing an un-protocoled method must fire — so the
drift checker is exercised against the actual protocol, not a toy.  The
final tests lint this repository itself: the tree must be clean.
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path
from typing import Dict, List

import pytest

from repro.devtools.lint import (
    RULES,
    RULES_BY_CODE,
    LintConfigError,
    SuppressionError,
    expand_rule_selector,
    parse_suppressions,
    run_lint,
)
from repro.devtools.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[1]

PROFILE_FILES = (
    "src/repro/core/profiles/base.py",
    "src/repro/core/profiles/list_backend.py",
    "src/repro/core/profiles/tree_backend.py",
    "src/repro/core/profiles/array_backend.py",
)

PROTOCOL_CONFIG = """
[tool.repro-lint.protocol]
base = "src/repro/core/profiles/base.py::ProfileBackend"
backends = [
    "src/repro/core/profiles/list_backend.py::ListProfile",
    "src/repro/core/profiles/tree_backend.py::TreeProfile",
    "src/repro/core/profiles/array_backend.py::ArrayProfile",
]
[tool.repro-lint.protocol.require-override]
"src/repro/core/profiles/array_backend.py::ArrayProfile" = ["fits_many_at"]
"""


def make_project(tmp_path: Path, files: Dict[str, str], config: str = "") -> Path:
    """Write a throwaway project: a pyproject with ``config`` appended to
    an empty ``[tool.repro-lint]`` table, plus dedented source files."""
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-lint]\n" + textwrap.dedent(config)
    )
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return tmp_path


def codes(report) -> List[str]:
    return [violation.code for violation in report.violations]


# ---------------------------------------------------------------------------
# RPL1xx determinism
# ---------------------------------------------------------------------------

WALLCLOCK_SRC = """
    import random
    import time
    from datetime import datetime

    def stamp():
        started = time.time()
        when = datetime.now()
        jitter = random.random()
        rng = random.Random()
        return started, when, jitter, rng

    def order():
        for item in {3, 1, 2}:
            yield item
"""


def test_determinism_positive(tmp_path):
    project = make_project(
        tmp_path,
        {"engine/sim.py": WALLCLOCK_SRC},
        config='determinism-paths = ["engine"]\n',
    )
    found = codes(run_lint([project / "engine"]))
    assert found.count("RPL101") == 2  # time.time, datetime.now
    assert found.count("RPL102") == 2  # random.random, seedless Random
    assert found.count("RPL103") == 1  # bare set iteration


def test_determinism_out_of_scope_is_clean(tmp_path):
    project = make_project(
        tmp_path,
        {"tools/sim.py": WALLCLOCK_SRC},
        config='determinism-paths = ["engine"]\n',
    )
    assert run_lint([project / "tools"]).clean


def test_determinism_clean_pass(tmp_path):
    project = make_project(
        tmp_path,
        {
            "engine/sim.py": """
                import random
                import time

                def run(seed):
                    gauge = time.perf_counter()
                    rng = random.Random(seed)
                    for item in sorted({3, 1, 2}):
                        rng.shuffle([item])
                    return gauge
            """
        },
        config='determinism-paths = ["engine"]\n',
    )
    assert run_lint([project / "engine"]).clean


def test_determinism_alias_resolution(tmp_path):
    project = make_project(
        tmp_path,
        {
            "engine/sim.py": """
                import time as clock
                from os import urandom as entropy

                def stamp():
                    return clock.time(), entropy(8)
            """
        },
        config='determinism-paths = ["engine"]\n',
    )
    assert codes(run_lint([project / "engine"])) == ["RPL101", "RPL101"]


def test_determinism_inline_noqa(tmp_path):
    project = make_project(
        tmp_path,
        {
            "engine/sim.py": """
                import time

                def stamp():
                    return time.time()  # repro: noqa RPL101 -- log banner only
            """
        },
        config='determinism-paths = ["engine"]\n',
    )
    assert run_lint([project / "engine"]).clean


# ---------------------------------------------------------------------------
# RPL2xx int-grid exactness
# ---------------------------------------------------------------------------


def test_exactness_module_scope(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/kernel.py": """
                def half(t):
                    scale = 0.5
                    ratio = t / 2
                    t /= 3
                    return float(t) + scale + ratio
            """
        },
        config='int-kernel-modules = ["src/kernel.py"]\n',
    )
    found = codes(run_lint([project / "src"]))
    assert found.count("RPL201") == 1
    assert found.count("RPL202") == 2  # BinOp and AugAssign division
    assert found.count("RPL203") == 1


def test_exactness_function_scope_only(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/engine.py": """
                class Engine:
                    def hot(self, t):
                        return t / 2

                    def report(self, t):
                        return t / 2
            """
        },
        config='int-kernel-functions = ["src/engine.py::Engine.hot"]\n',
    )
    report = run_lint([project / "src"])
    assert codes(report) == ["RPL202"]
    assert report.violations[0].line == 4  # the leading newline is line 1


def test_exactness_region_suppression(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/kernel.py": """
                def mixed(t):
                    exact = t // 2
                    # repro: noqa-begin RPL2xx -- float gauge accounting
                    gauge = t / 2
                    gauge += 1.0
                    # repro: noqa-end RPL2xx
                    leak = t / 4
                    return exact, gauge, leak
            """
        },
        config='int-kernel-modules = ["src/kernel.py"]\n',
    )
    report = run_lint([project / "src"])
    assert codes(report) == ["RPL202"]  # only the division outside the region
    assert report.violations[0].line == 8


def test_unterminated_region_is_an_error(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/kernel.py": """
                # repro: noqa-begin RPL2xx -- never closed
                x = 1
            """
        },
    )
    report = run_lint([project / "src"])
    assert not report.clean
    assert "never closed" in report.errors[0]


# ---------------------------------------------------------------------------
# RPL3xx backend-protocol drift (fixture copies of the real files)
# ---------------------------------------------------------------------------


@pytest.fixture()
def profile_copy(tmp_path):
    """A throwaway project holding copies of the real profile sources."""
    for rel in PROFILE_FILES:
        destination = tmp_path / rel
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text((REPO_ROOT / rel).read_text())
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-lint]\n" + PROTOCOL_CONFIG
    )
    return tmp_path


def _delete_method(path: Path, class_name: str, method: str) -> None:
    source = path.read_text()
    for node in ast.walk(ast.parse(source)):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            for child in node.body:
                if isinstance(child, ast.FunctionDef) and child.name == method:
                    lines = source.splitlines(keepends=True)
                    start = child.lineno - 1
                    if child.decorator_list:
                        start = child.decorator_list[0].lineno - 1
                    del lines[start : child.end_lineno]
                    path.write_text("".join(lines))
                    return
    raise AssertionError(f"{class_name}.{method} not found in {path}")


def _insert_method(path: Path, class_name: str, text: str) -> None:
    source = path.read_text()
    for node in ast.walk(ast.parse(source)):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            lines = source.splitlines(keepends=True)
            lines.insert(node.body[0].lineno - 1, text)
            path.write_text("".join(lines))
            return
    raise AssertionError(f"{class_name} not found in {path}")


def test_protocol_copies_are_aligned(profile_copy):
    assert run_lint([profile_copy / "src"]).clean


def test_deleting_required_override_fires_rpl304(profile_copy):
    array = profile_copy / "src/repro/core/profiles/array_backend.py"
    _delete_method(array, "ArrayProfile", "fits_many_at")
    assert "RPL304" in codes(run_lint([profile_copy / "src"]))


def test_unprotocoled_public_method_fires_rpl303(profile_copy):
    array = profile_copy / "src/repro/core/profiles/array_backend.py"
    _insert_method(
        array, "ArrayProfile", "    def shiny_new_surface(self):\n        return 0\n"
    )
    report = run_lint([profile_copy / "src"])
    assert "RPL303" in codes(report)
    assert any("shiny_new_surface" in v.message for v in report.violations)


def test_deleting_primitive_fires_rpl301(profile_copy):
    lst = profile_copy / "src/repro/core/profiles/list_backend.py"
    _delete_method(lst, "ListProfile", "area")
    report = run_lint([profile_copy / "src"])
    assert "RPL301" in codes(report)
    assert any("area()" in v.message for v in report.violations)


def test_signature_drift_fires_rpl302(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/base.py": """
                class Proto:
                    def area(self, start, end=None):
                        raise NotImplementedError
            """,
            "src/impl.py": """
                class Impl:
                    def area(self, begin, end=None):
                        return 0
            """,
        },
        config="""
            [tool.repro-lint.protocol]
            base = "src/base.py::Proto"
            backends = ["src/impl.py::Impl"]
        """,
    )
    report = run_lint([project / "src"])
    assert codes(report) == ["RPL302"]
    assert "(begin, end=...)" in report.violations[0].message


def test_broken_protocol_scope_is_a_config_error(tmp_path):
    project = make_project(
        tmp_path,
        {"src/base.py": "class Other:\n    pass\n"},
        config="""
            [tool.repro-lint.protocol]
            base = "src/base.py::Proto"
            backends = []
        """,
    )
    with pytest.raises(LintConfigError):
        run_lint([project / "src"])


# ---------------------------------------------------------------------------
# RPL401 multiprocessing safety
# ---------------------------------------------------------------------------


def test_pool_lambda_and_nested_def_fire(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/run.py": """
                from concurrent.futures import ProcessPoolExecutor

                def launch(items):
                    def helper(item):
                        return item + 1

                    with ProcessPoolExecutor() as pool:
                        a = list(pool.map(lambda x: x, items))
                        b = pool.submit(helper, 1)
                    return a, b
            """
        },
    )
    assert codes(run_lint([project / "src"])) == ["RPL401", "RPL401"]


def test_pool_module_level_worker_is_clean(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/run.py": """
                from concurrent.futures import ProcessPoolExecutor
                from functools import partial

                def worker(item, scale=1):
                    return item * scale

                def launch(items):
                    with ProcessPoolExecutor() as pool:
                        a = list(pool.map(worker, items))
                        b = pool.submit(partial(worker, scale=2), 1)
                    return a, b
            """
        },
    )
    assert run_lint([project / "src"]).clean


# ---------------------------------------------------------------------------
# RPL402 atomic durable writes
# ---------------------------------------------------------------------------

DURABLE_CONFIG = """
durable-write-paths = ["src/store"]
"""

DURABLE_SRC = """
    import json
    from pathlib import Path

    def publish(path, rows):
        with open(path, "w") as fh:
            json.dump(rows, fh)

    def publish_bytes(path, blob):
        with open(path, mode="wb") as fh:
            fh.write(blob)

    def publish_path(path, text):
        Path(path).write_text(text)
"""


def test_truncating_writes_on_durable_paths_fire(tmp_path):
    project = make_project(
        tmp_path, {"src/store/out.py": DURABLE_SRC}, DURABLE_CONFIG
    )
    assert codes(run_lint([project / "src"])) == [
        "RPL402", "RPL402", "RPL402",
    ]


def test_same_file_outside_durable_scope_is_clean(tmp_path):
    project = make_project(
        tmp_path, {"src/other/out.py": DURABLE_SRC}, DURABLE_CONFIG
    )
    assert run_lint([project / "src"]).clean


def test_appends_reads_and_noqa_are_clean(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/store/out.py": """
                import os

                def journal_append(path, line):
                    # appends are the journal's own format: exempt
                    with open(path, "a") as fh:
                        fh.write(line)

                def load(path):
                    with open(path) as fh:
                        return fh.read()

                def tmp_leg(path, data):
                    with open(path + ".tmp", "wb") as fh:  # repro: noqa RPL402 -- atomic helper tmp leg
                        fh.write(data)
                    os.replace(path + ".tmp", path)
            """
        },
        DURABLE_CONFIG,
    )
    assert run_lint([project / "src"]).clean


# ---------------------------------------------------------------------------
# RPL5xx registry hygiene
# ---------------------------------------------------------------------------


def test_non_literal_registry_name_fires(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/plugins.py": """
                from registry import register

                for kind in ("a", "b"):
                    register(f"plugin-{kind}", object)
            """
        },
    )
    assert codes(run_lint([project / "src"])) == ["RPL501"]


def test_forwarding_wrapper_is_exempt(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/wrap.py": """
                from registry import REG

                def register_policy(name, fn, overwrite=False):
                    return REG.register(name, fn, overwrite=overwrite)

                register_policy("easy", object)
            """
        },
    )
    assert run_lint([project / "src"]).clean


def test_duplicate_registration_fires_cross_file(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/a.py": """
                from registry import register

                register("dup", object)
            """,
            "src/b.py": """
                from registry import register

                register("dup", object)
                register("unique", object)
            """,
        },
        config='registry-duplicate-paths = ["src"]\n',
    )
    report = run_lint([project / "src"])
    assert codes(report) == ["RPL502"]
    assert "a.py:" in report.violations[0].message  # points back at the first


def test_duplicates_outside_declared_paths_ignored(tmp_path):
    project = make_project(
        tmp_path,
        {
            "tests_dir/t.py": """
                from registry import register

                register("x", object)
                register("x", object)
            """
        },
        config='registry-duplicate-paths = ["src"]\n',
    )
    assert run_lint([project / "tests_dir"]).clean


# ---------------------------------------------------------------------------
# suppressions, selectors, CLI surface
# ---------------------------------------------------------------------------


def test_bare_noqa_suppresses_every_rule():
    suppressions = parse_suppressions("x = 1  # repro: noqa\n")
    assert suppressions[0].matches(1, "RPL101")
    assert suppressions[0].matches(1, "RPL502")
    assert not suppressions[0].matches(2, "RPL101")


def test_malformed_selector_raises():
    with pytest.raises(SuppressionError):
        parse_suppressions("x = 1  # repro: noqa RPL9999\n")


def test_region_requires_codes():
    with pytest.raises(SuppressionError):
        parse_suppressions("# repro: noqa-begin\nx = 1\n# repro: noqa-end\n")


def test_hash_inside_string_is_not_a_suppression():
    assert parse_suppressions('x = "# repro: noqa RPL101"\n') == []


def test_rule_selector_expansion():
    assert expand_rule_selector("RPL202") == ["RPL202"]
    assert expand_rule_selector("RPL2xx") == ["RPL201", "RPL202", "RPL203"]
    with pytest.raises(ValueError):
        expand_rule_selector("E501")


def test_rule_catalog_is_consistent():
    assert len({rule.code for rule in RULES}) == len(RULES)
    for code, rule in RULES_BY_CODE.items():
        assert code == rule.code
        assert rule.summary and rule.contract


def test_rule_filter(tmp_path):
    project = make_project(
        tmp_path,
        {
            "engine/sim.py": """
                import time

                def f(t):
                    return time.time() + t / 2
            """
        },
        config="""
            determinism-paths = ["engine"]
            int-kernel-modules = ["engine/sim.py"]
        """,
    )
    assert codes(run_lint([project / "engine"], rules=["RPL2xx"])) == ["RPL202"]
    assert codes(run_lint([project / "engine"], rules=["RPL101"])) == ["RPL101"]


def test_cli_json_schema(tmp_path, capsys):
    project = make_project(
        tmp_path,
        {
            "engine/sim.py": """
                import time

                def f():
                    return time.time()
            """
        },
        config='determinism-paths = ["engine"]\n',
    )
    assert lint_main(["--json", str(project / "engine")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["clean"] is False
    assert payload["files_checked"] == 1
    (violation,) = payload["violations"]
    assert violation["code"] == "RPL101"
    assert violation["path"].endswith("sim.py")
    assert violation["line"] == 5
    assert isinstance(violation["col"], int)
    assert "time.time" in violation["message"]


def test_cli_unknown_rule_is_usage_error(tmp_path, capsys):
    make_project(tmp_path, {"src/x.py": "x = 1\n"})
    assert lint_main(["--rule", "RPL999", str(tmp_path / "src")]) == 2
    assert "RPL999" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# the repository lints itself
# ---------------------------------------------------------------------------


def test_repository_is_clean(capsys):
    targets = [REPO_ROOT / "src" / "repro", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
    assert lint_main(["--check"] + [str(t) for t in targets]) == 0


def test_repro_lint_src_exits_zero(capsys):
    assert lint_main([str(REPO_ROOT / "src" / "repro")]) == 0


# ---------------------------------------------------------------------------
# RPL503 engine-internal reach-in
# ---------------------------------------------------------------------------

ENGINE_INTERNALS_CONFIG = """
    engine-internal-names = ["_run_fused", "_run_batched"]
    engine-internal-owners = ["src/engine.py"]
"""

ENGINE_SRC = """
    class Engine:
        def _run_fused(self):
            return self._run_batched()

        def _run_batched(self):
            return 1
"""


def test_engine_reach_in_fires_outside_owner(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/engine.py": ENGINE_SRC,
            "src/driver.py": """
                def go(engine):
                    return engine._run_fused()
            """,
        },
        config=ENGINE_INTERNALS_CONFIG,
    )
    report = run_lint([project / "src"])
    assert [(v.path, v.code) for v in report.violations] == [
        ("src/driver.py", "RPL503")
    ]
    assert "SchedulerCore" in report.violations[0].message


def test_engine_owner_file_is_exempt(tmp_path):
    project = make_project(
        tmp_path, {"src/engine.py": ENGINE_SRC},
        config=ENGINE_INTERNALS_CONFIG,
    )
    assert run_lint([project / "src"]).clean


def test_engine_reach_in_flags_any_receiver(tmp_path):
    # the check is syntactic: `x._run_batched` fires whatever `x` is
    project = make_project(
        tmp_path,
        {"src/other.py": """
            def probe(x):
                return x._run_batched
        """},
        config=ENGINE_INTERNALS_CONFIG,
    )
    assert codes(run_lint([project / "src"])) == ["RPL503"]


def test_engine_reach_in_noqa_suppresses(tmp_path):
    project = make_project(
        tmp_path,
        {"src/bench.py": """
            def gate(engine):
                # differential twin: measured on purpose
                return engine._run_fused()  # repro: noqa RPL503 -- twin gate
        """},
        config=ENGINE_INTERNALS_CONFIG,
    )
    assert run_lint([project / "src"]).clean


def test_engine_internals_unconfigured_is_clean(tmp_path):
    project = make_project(
        tmp_path,
        {"src/driver.py": """
            def go(engine):
                return engine._run_fused()
        """},
    )
    assert run_lint([project / "src"]).clean


def test_engine_internals_config_parses():
    from repro.devtools.lint.config import load_config

    config = load_config(REPO_ROOT / "pyproject.toml")
    assert "_run_fused" in config.engine_internal_names
    assert "src/repro/simulation/replay.py" in config.engine_internal_owners
