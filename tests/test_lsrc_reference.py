"""Cross-validation of the production LSRC against an independent,
deliberately naive reference implementation.

The reference shares no code with the production scheduler: capacity is
recomputed from the raw job/reservation intervals at every query, and the
event sweep is a plain sorted-set loop.  Hypothesis then asserts the two
produce *identical* schedules (same start for every job) across random
instances — the strongest correctness statement available for the
library's central algorithm.
"""

from __future__ import annotations

from typing import Dict

from hypothesis import given, settings, strategies as st

from repro.algorithms import ListScheduler
from repro.core import ReservationInstance

from conftest import random_resa, random_rigid


def naive_lsrc(instance: ReservationInstance) -> Dict:
    """Reference LSRC: raw interval arithmetic, no shared data structures."""
    jobs = list(instance.jobs)
    placed: Dict = {}  # job id -> start

    def capacity_at(t) -> int:
        used = 0
        for res in instance.reservations:
            if res.start <= t < res.end:
                used += res.q
        for job in jobs:
            if job.id in placed:
                s = placed[job.id]
                if s <= t < s + job.p:
                    used += job.q
        return instance.m - used

    def fits(job, t) -> bool:
        # capacity changes only at interval endpoints; sample t and every
        # endpoint strictly inside [t, t + p)
        points = {t}
        for res in instance.reservations:
            for e in (res.start, res.end):
                if t < e < t + job.p:
                    points.add(e)
        for other in jobs:
            if other.id in placed:
                s = placed[other.id]
                for e in (s, s + other.p):
                    if t < e < t + job.p:
                        points.add(e)
        return all(capacity_at(p) >= job.q for p in points)

    # event times: 0, releases, reservation boundaries, plus completions
    # as they appear
    events = {0}
    events.update(j.release for j in jobs)
    for res in instance.reservations:
        events.update((res.start, res.end))
    done_events = set()
    while len(placed) < len(jobs):
        future = sorted(e for e in events if e not in done_events)
        if not future:
            raise AssertionError("reference LSRC ran out of events")
        t = future[0]
        done_events.add(t)
        for job in jobs:  # list order
            if job.id in placed or job.release > t:
                continue
            if fits(job, t):
                placed[job.id] = t
                events.add(t + job.p)
    return placed


class TestAgainstReference:
    def test_tiny_instances(self, tiny_rigid, tiny_resa):
        for inst in (tiny_rigid.to_reservation_instance(), tiny_resa):
            production = ListScheduler().schedule(inst)
            reference = naive_lsrc(inst)
            assert production.starts == reference

    def test_reservation_heavy(self):
        inst = ReservationInstance.from_specs(
            4,
            [(3, 2), (5, 1), (2, 4), (1, 1), (4, 2)],
            [(2, 3, 2), (8, 2, 3)],
        )
        assert ListScheduler().schedule(inst).starts == naive_lsrc(inst)

    def test_with_releases(self):
        inst = ReservationInstance.from_specs(
            3,
            [(2, 1, 0), (3, 2, 1), (1, 3, 2), (4, 1, 0)],
            [(4, 2, 1)],
        )
        assert ListScheduler().schedule(inst).starts == naive_lsrc(inst)


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000_000))
def test_production_equals_reference_random_rigid(seed):
    inst = random_rigid(seed, n=8).to_reservation_instance()
    assert ListScheduler().schedule(inst).starts == naive_lsrc(inst)


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000_000))
def test_production_equals_reference_random_reservations(seed):
    inst = random_resa(seed, n=7)
    assert ListScheduler().schedule(inst).starts == naive_lsrc(inst)
