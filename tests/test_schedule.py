"""Tests for schedules: verification, usage profiles, processor assignment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ReservationInstance,
    RigidInstance,
    Schedule,
    left_shifted,
)
from repro.errors import InfeasibleScheduleError, InvalidInstanceError

from conftest import random_resa


class TestScheduleBasics:
    def test_construction_and_accessors(self, tiny_resa):
        s = Schedule(tiny_resa, {0: 4, 1: 0, 2: 7, 3: 11})
        assert s.start_of(0) == 4
        assert s.end_of(0) == 7
        assert s.makespan == 12
        assert len(s) == 4

    def test_missing_job_rejected(self, tiny_resa):
        with pytest.raises(InvalidInstanceError):
            Schedule(tiny_resa, {0: 0})

    def test_unknown_job_rejected(self, tiny_resa):
        with pytest.raises(InvalidInstanceError):
            Schedule(tiny_resa, {0: 4, 1: 0, 2: 7, 3: 11, "ghost": 0})

    def test_scheduled_jobs_sorted(self, tiny_resa):
        s = Schedule(tiny_resa, {0: 4, 1: 0, 2: 7, 3: 11})
        starts = [sj.start for sj in s.scheduled_jobs()]
        assert starts == sorted(starts)

    def test_running_at_and_usage(self, tiny_resa):
        s = Schedule(tiny_resa, {0: 4, 1: 0, 2: 7, 3: 11})
        assert {j.id for j in s.running_at(0)} == {1}
        assert s.usage_at(0) == 1
        assert s.usage_at(5) == 2
        assert s.usage_at(11) == 4

    def test_makespan_counts_jobs_not_reservations(self):
        # reservation extends to 100 but jobs finish at 2
        inst = ReservationInstance.from_specs(2, [(2, 1)], [(50, 50, 2)])
        s = Schedule(inst, {0: 0})
        assert s.makespan == 2

    def test_empty_schedule(self):
        inst = RigidInstance(m=2, jobs=())
        assert Schedule(inst, {}).makespan == 0


class TestVerification:
    def test_feasible(self, tiny_resa):
        Schedule(tiny_resa, {0: 4, 1: 0, 2: 7, 3: 11}).verify()

    def test_capacity_violation_with_reservation(self, tiny_resa):
        # job 3 (q=4) overlapping the reservation at [2,4) cannot fit
        s = Schedule(tiny_resa, {0: 4, 1: 0, 2: 7, 3: 3})
        with pytest.raises(InfeasibleScheduleError) as err:
            s.verify()
        assert err.value.violations

    def test_overload_without_reservations(self, tiny_rigid):
        s = Schedule(tiny_rigid, {0: 0, 1: 0, 2: 0, 3: 0})
        assert not s.is_feasible()

    def test_negative_start(self, tiny_rigid):
        s = Schedule(tiny_rigid, {0: -1, 1: 10, 2: 20, 3: 30})
        assert any("negative" in v for v in s.violations())

    def test_release_violation(self):
        inst = RigidInstance.from_specs(2, [(1, 1, 5)])
        s = Schedule(inst, {0: 3})
        assert any("release" in v for v in s.violations())

    def test_boundary_touching_is_feasible(self):
        # job ends exactly when the reservation starts: half-open intervals
        inst = ReservationInstance.from_specs(1, [(2, 1)], [(2, 3, 1)])
        Schedule(inst, {0: 0}).verify()
        # and one starting exactly when it ends
        Schedule(inst, {0: 5}).verify()


class TestUsageProfile:
    def test_matches_point_queries(self, tiny_resa):
        s = Schedule(tiny_resa, {0: 4, 1: 0, 2: 7, 3: 11})
        profile = s.usage_profile()
        for t in range(0, 13):
            assert profile.capacity_at(t) == s.usage_at(t)

    def test_total_area_equals_work(self, tiny_resa):
        s = Schedule(tiny_resa, {0: 4, 1: 0, 2: 7, 3: 11})
        profile = s.usage_profile()
        assert profile.area(0, s.makespan) == tiny_resa.total_work


class TestProcessorAssignment:
    def test_assignment_covers_everything(self, tiny_resa):
        s = Schedule(tiny_resa, {0: 4, 1: 0, 2: 7, 3: 11})
        assignment = s.assign_processors()
        for job in tiny_resa.jobs:
            assert len(assignment[("job", job.id)]) == job.q
        for res in tiny_resa.reservations:
            assert len(assignment[("res", res.id)]) == res.q

    def test_no_processor_double_booked(self, tiny_resa):
        s = Schedule(tiny_resa, {0: 4, 1: 0, 2: 7, 3: 11})
        assignment = s.assign_processors()
        intervals = []
        for job in tiny_resa.jobs:
            st_ = s.starts[job.id]
            for p in assignment[("job", job.id)]:
                intervals.append((p, st_, st_ + job.p))
        for res in tiny_resa.reservations:
            for p in assignment[("res", res.id)]:
                intervals.append((p, res.start, res.end))
        for i, (p1, s1, e1) in enumerate(intervals):
            for p2, s2, e2 in intervals[i + 1 :]:
                if p1 == p2:
                    assert e1 <= s2 or e2 <= s1, (
                        f"processor {p1} double-booked"
                    )

    def test_infeasible_schedule_rejected(self, tiny_rigid):
        s = Schedule(tiny_rigid, {0: 0, 1: 0, 2: 0, 3: 0})
        with pytest.raises(InfeasibleScheduleError):
            s.assign_processors()

    def test_assignment_cached(self, tiny_rigid):
        s = Schedule(tiny_rigid, {0: 0, 1: 0, 2: 3, 3: 7})
        assert s.assign_processors() is s.assign_processors()


class TestLeftShift:
    def test_left_shift_reduces_or_keeps_makespan(self):
        inst = RigidInstance.from_specs(2, [(2, 1), (2, 1), (2, 2)])
        padded = Schedule(inst, {0: 5, 1: 5, 2: 10})
        shifted = left_shifted(padded)
        shifted.verify()
        assert shifted.makespan <= padded.makespan
        assert shifted.makespan == 4  # both units in parallel, then the wide

    def test_left_shift_respects_reservations(self, tiny_resa):
        s = Schedule(tiny_resa, {0: 10, 1: 14, 2: 20, 3: 30})
        shifted = left_shifted(s)
        shifted.verify()
        assert shifted.makespan <= s.makespan

    def test_left_shift_idempotent_on_compact(self):
        inst = RigidInstance.from_specs(2, [(2, 2), (2, 2)])
        compact = Schedule(inst, {0: 0, 1: 2})
        again = left_shifted(compact)
        assert again.starts == compact.starts


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_shifted_schedules_stay_feasible(seed):
    """Left-shifting any feasible (sequentially built) schedule stays
    feasible and never increases the makespan."""
    inst = random_resa(seed)
    profile = inst.availability_profile()
    starts = {}
    # build an intentionally sloppy feasible schedule: place sequentially
    # with random padding
    import random as _r

    rng = _r.Random(seed)
    cursor = 0
    for job in inst.jobs:
        s = profile.earliest_fit(job.q, job.p, after=cursor + rng.randint(0, 5))
        profile.reserve(s, job.p, job.q)
        starts[job.id] = s
        cursor = s
    sloppy = Schedule(inst, starts)
    sloppy.verify()
    tight = left_shifted(sloppy)
    tight.verify()
    assert tight.makespan <= sloppy.makespan
