"""Tests for lower bounds — including the soundness property
``lower_bound(I) <= C*max(I)`` against the exhaustive solver."""

from hypothesis import given, settings, strategies as st

from repro.algorithms import exhaustive_optimal
from repro.core import (
    ReservationInstance,
    RigidInstance,
    Schedule,
    area_bound,
    lower_bound,
    pmax_bound,
    ratio_to_lower_bound,
    release_bound,
    squashed_area_bound,
    work_bound,
)

from conftest import random_resa, random_rigid


class TestWorkAndAreaBounds:
    def test_work_bound_rigid(self, tiny_rigid):
        assert work_bound(tiny_rigid) == tiny_rigid.total_work / 4

    def test_area_bound_equals_work_bound_without_reservations(
        self, tiny_rigid
    ):
        assert area_bound(tiny_rigid) == work_bound(tiny_rigid)

    def test_area_bound_stronger_with_reservations(self, tiny_resa):
        assert area_bound(tiny_resa) > work_bound(tiny_resa)

    def test_area_bound_exact_value(self):
        # m=2, work=6, reservation blocks 1 proc on [0, 2):
        # area offered: t in [0,2): 1/unit; after: 2/unit -> 6 done at t=4
        inst = ReservationInstance.from_specs(2, [(3, 2)], [(0, 2, 1)])
        assert area_bound(inst) == 4

    def test_empty(self):
        inst = RigidInstance(m=2, jobs=())
        assert lower_bound(inst) == 0


class TestPmaxBound:
    def test_no_reservations(self, tiny_rigid):
        assert pmax_bound(tiny_rigid) == tiny_rigid.pmax

    def test_with_blocking_reservation(self):
        # the q=2 job cannot start before the reservation ends at 5
        inst = ReservationInstance.from_specs(2, [(3, 2)], [(0, 5, 1)])
        assert pmax_bound(inst) == 8

    def test_unschedulable_job_raises(self):
        # reservation permanently occupying... not possible (finite), but a
        # job wider than the machine is rejected at instance level; emulate
        # narrowness via release-time shenanigans is also impossible ->
        # check the error path with a profile the job never fits: none
        # exists, so just confirm normal instances do not raise.
        inst = ReservationInstance.from_specs(2, [(1, 2)], [(0, 3, 1)])
        assert pmax_bound(inst) == 4


class TestSquashedAreaBound:
    def test_wide_jobs_serialize(self):
        # two jobs of q=3 > m/2 on m=4: they cannot overlap
        inst = RigidInstance.from_specs(4, [(5, 3), (4, 3)])
        assert squashed_area_bound(inst) == 9
        assert lower_bound(inst) == 9

    def test_no_wide_jobs(self):
        inst = RigidInstance.from_specs(4, [(5, 2), (4, 2)])
        assert squashed_area_bound(inst) == 0

    def test_respects_reservations(self):
        # wide jobs need >= 3 procs; reservation leaves 2 on [0, 4)
        inst = ReservationInstance.from_specs(
            4, [(5, 3), (4, 3)], [(0, 4, 2)]
        )
        assert squashed_area_bound(inst) == 13


class TestReleaseBound:
    def test_release_bound(self):
        inst = RigidInstance.from_specs(2, [(2, 1, 10), (5, 1)])
        assert release_bound(inst) == 12


class TestRatioHelper:
    def test_ratio_to_lower_bound(self, tiny_rigid):
        s = Schedule(tiny_rigid, {0: 0, 1: 3, 2: 0, 3: 5})
        assert ratio_to_lower_bound(s) == s.makespan / lower_bound(tiny_rigid)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_lower_bound_is_sound_rigid(seed):
    """lower_bound(I) <= C*max(I) on random small rigid instances."""
    inst = random_rigid(seed, n=5)
    opt = exhaustive_optimal(inst)
    assert lower_bound(inst) <= opt.makespan + 1e-9


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_lower_bound_is_sound_with_reservations(seed):
    """lower_bound(I) <= C*max(I) on random small reservation instances."""
    inst = random_resa(seed, n=5)
    opt = exhaustive_optimal(inst)
    assert lower_bound(inst) <= opt.makespan + 1e-9
