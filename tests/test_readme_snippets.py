"""The README's code snippets must keep working verbatim.

Documentation rots silently; executing the quickstart snippets here makes
the README part of the test suite.
"""



class TestReadmeQuickstart:
    def test_package_quickstart(self):
        """The snippet in README 'Quickstart'."""
        from repro import ReservationInstance, lower_bound
        from repro.algorithms import list_schedule, branch_and_bound
        from repro.viz import render_gantt

        inst = ReservationInstance.from_specs(
            m=8,
            job_specs=[(4, 3), (3, 2), (6, 4), (2, 5), (1, 8)],
            reservation_specs=[(6, 6, 4)],
        )

        sched = list_schedule(inst, priority="lpt")
        sched.verify()
        assert sched.makespan >= lower_bound(inst)
        assert "Cmax" in render_gantt(sched)

        exact = branch_and_bound(inst)
        assert exact.proven_optimal
        assert exact.makespan <= sched.makespan

    def test_module_docstring_quickstart(self):
        """The snippet in the repro package docstring."""
        from repro import ReservationInstance, list_schedule

        inst = ReservationInstance.from_specs(
            m=4,
            job_specs=[(3, 2), (2, 1), (4, 2), (1, 4)],
            reservation_specs=[(2, 2, 2)],
        )
        sched = list_schedule(inst)
        sched.verify()
        assert sched.makespan > 0

    def test_running_experiments_snippet(self, tmp_path):
        """The snippet in README 'Running experiments' (shrunk sizes)."""
        from repro.run import ExperimentSpec, WorkloadSpec, Runner

        spec = ExperimentSpec(
            name="alpha-sweep",
            algorithms=["lsrc", "online:easy"],
            workloads=[WorkloadSpec("alpha-uniform",
                                    params={"n": 6, "m": 8},
                                    grid={"alpha": [0.25, 0.5, 0.75]})],
            seeds=range(2),
        )
        result = Runner(jobs=1, store=str(tmp_path / "sweep.jsonl")).run(spec)
        assert len(result.filtered(algorithm="lsrc", alpha=0.5)) == 2

    def test_verify_paper_claims_snippet(self):
        from repro.analysis import verify_paper_claims

        report = verify_paper_claims(seed=0)
        assert report.all_passed

    def test_replaying_real_traces_snippet(self, tmp_path):
        """The snippets in README 'Replaying real traces' (shrunk sizes)."""
        from repro.cli import main
        from repro.run import ExperimentSpec, Runner, TraceSpec

        out = str(tmp_path / "metrics.jsonl")
        assert main([
            "replay", "synth:heavy:2000", "-m", "256", "-p", "greedy",
            "--window", "500", "-o", out,
        ]) == 0

        spec = ExperimentSpec(
            name="trace-sweep",
            algorithms=["online:easy", "online:conservative"],
            traces=[TraceSpec("synth:heavy", params={"n": 400, "m": 64})],
            metrics=["makespan", "utilization", "mean_bounded_slowdown",
                     "ratio_lb"],
        )
        result = Runner().run(spec)
        assert all(row["ratio_lb"] >= 1.0 for row in result.rows)

    def test_trace_replay_example_spec_is_valid(self):
        import pathlib

        import repro
        from repro.core.serialize import load_spec

        example = (pathlib.Path(repro.__file__).parents[2] / "examples"
                   / "trace_replay.json")
        if example.exists():
            load_spec(str(example)).validate()

    def test_version_is_consistent(self):
        import repro

        assert repro.__version__ == "1.0.0"
        # pyproject version must match
        import pathlib

        pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
        if pyproject.exists():
            assert 'version = "1.0.0"' in pyproject.read_text()
