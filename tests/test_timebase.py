"""Integer-timebase fast path: exactness, differential guarantees, units.

The load-bearing claim of :mod:`repro.core.timebase` is *byte identity*:
scheduling on the scaled-integer twin and denormalising produces exactly
the schedule the exact ``Fraction`` path produces.  These tests check it
the hard way — hypothesis-style randomized grids across **every
registered scheduler and workload generator**, plus targeted property
tests of the engine pieces (``Timebase``, ``IntSweepProfile``, the
incremental LSRC sweep, the online simulation twin).
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.algorithms import available_schedulers, get_scheduler
from repro.algorithms.list_scheduling import ListScheduler
from repro.core.instance import ReservationInstance
from repro.core.metrics import evaluate_metrics
from repro.core.profiles import ListProfile
from repro.core.timebase import (
    TIMEBASE_POLICIES,
    IntSweepProfile,
    Timebase,
    check_timebase_policy,
    exactify_instance,
    int_sweep_profile,
    on_int_timebase,
    timebase_for,
)
from repro.errors import InvalidInstanceError, ReproError
from repro.simulation import available_policies, simulate
from repro.workloads import available_workloads, make_workload


# ---------------------------------------------------------------------------
# Timebase units
# ---------------------------------------------------------------------------

class TestTimebase:
    def test_integer_instance_has_trivial_scale(self):
        inst = ReservationInstance.from_specs(4, [(3, 2), (5, 1)], [(1, 2, 1)])
        tb = Timebase.of(inst)
        assert tb is not None and tb.scale == 1
        assert tb.normalize_instance(inst) is inst

    def test_scale_is_lcm_of_denominators(self):
        inst = ReservationInstance.from_specs(
            4,
            [(Fraction(1, 2), 2), (Fraction(2, 3), 1, Fraction(5, 6))],
            [(Fraction(1, 4), Fraction(1, 2), 1)],
        )
        tb = Timebase.of(inst)
        assert tb.scale == 12  # lcm(2, 3, 6, 4, 2)

    def test_scale_and_denormalize_roundtrip(self):
        tb = Timebase(12)
        for t in [0, 1, Fraction(1, 2), Fraction(7, 3), Fraction(11, 12)]:
            v = tb.scale_time(t)
            assert isinstance(v, int)
            assert tb.denormalize(v) == t
        # whole grid values come back as plain ints
        assert tb.denormalize(24) == 2 and isinstance(tb.denormalize(24), int)

    def test_off_grid_time_is_loud(self):
        with pytest.raises(InvalidInstanceError):
            Timebase(2).scale_time(Fraction(1, 3))

    def test_invalid_scale_rejected(self):
        for bad in [0, -3, Fraction(1, 2), 1.5]:
            with pytest.raises(InvalidInstanceError):
                Timebase(bad)

    def test_auto_declines_floats_int_grids_them(self):
        inst = ReservationInstance.from_specs(4, [(0.5, 2), (1.25, 1)])
        assert Timebase.of(inst, exact_only=True) is None
        tb = Timebase.of(inst, exact_only=False)
        assert tb is not None and tb.scale == 4  # 0.5 and 1.25 are exact

    def test_nonfinite_floats_never_grid(self):
        inst = ReservationInstance.from_specs(4, [(float("inf"), 1)])
        assert Timebase.of(inst, exact_only=False) is None

    def test_normalized_twin_preserves_structure(self):
        inst = ReservationInstance.from_specs(
            4, [(Fraction(1, 2), 2, Fraction(3, 2))], [(1, Fraction(5, 2), 1)]
        )
        tb = Timebase.of(inst)
        twin = tb.normalize_instance(inst)
        assert twin is not inst
        assert [j.id for j in twin.jobs] == [j.id for j in inst.jobs]
        assert all(isinstance(j.p, int) and isinstance(j.release, int)
                   for j in twin.jobs)
        assert all(isinstance(r.start, int) and isinstance(r.p, int)
                   for r in twin.reservations)
        assert twin.jobs[0].p == 1  # scale lcm(2,2,1,2) = 2
        assert twin.jobs[0].release == 3 and twin.reservations[0].p == 5

    def test_policy_validation(self):
        for ok in TIMEBASE_POLICIES:
            assert check_timebase_policy(ok) == ok
        with pytest.raises(InvalidInstanceError):
            check_timebase_policy("fast")
        with pytest.raises(InvalidInstanceError):
            ListScheduler(timebase="bogus")

    def test_timebase_for_policies(self):
        ints = ReservationInstance.from_specs(4, [(3, 2)])
        floats = ReservationInstance.from_specs(4, [(0.5, 2)])
        assert timebase_for(ints, "exact") is None
        assert timebase_for(ints, "auto").scale == 1
        assert timebase_for(floats, "auto") is None
        assert timebase_for(floats, "int").scale == 2

    def test_exactify_instance(self):
        inst = ReservationInstance.from_specs(
            4, [(0.5, 2, 0.25)], [(0.75, 1.5, 1)]
        )
        exact = exactify_instance(inst)
        assert exact.jobs[0].p == Fraction(1, 2)
        assert exact.jobs[0].release == Fraction(1, 4)
        assert exact.reservations[0].start == Fraction(3, 4)
        assert isinstance(exact.jobs[0].p, Fraction)


# ---------------------------------------------------------------------------
# IntSweepProfile vs the exact reference backend
# ---------------------------------------------------------------------------

def _random_profile(rng):
    n = rng.randint(1, 14)
    times = sorted(rng.sample(range(0, 120), n))
    if times[0] != 0:
        times.insert(0, 0)
    caps = [rng.randint(0, 12) for _ in times]
    # canonicalize (merge equal neighbours) through the reference backend
    ref = ListProfile(times, caps)
    t, c = ref.as_lists()
    return ref, IntSweepProfile(t, c)


class TestIntSweepProfile:
    def test_differential_ops_against_list_backend(self):
        """Random mirrored op sequences: every query agrees with the
        reference backend; mutations keep agreeing afterwards."""
        rng = random.Random(20260730)
        for _ in range(120):
            ref, fast = _random_profile(rng)
            for _ in range(30):
                op = rng.randrange(5)
                start = rng.randint(0, 130)
                dur = rng.randint(1, 25)
                q = rng.randint(1, 8)
                if op == 0:
                    assert fast.capacity_at(start) == ref.capacity_at(start)
                elif op == 1:
                    assert fast.fits(q, start, dur) == ref.fits(q, start, dur)
                elif op == 2:
                    assert (fast.earliest_fit(q, dur, after=start)
                            == ref.earliest_fit(q, dur, after=start))
                elif op == 3:
                    end = None if rng.random() < 0.3 else start + dur
                    assert (fast.max_capacity_between(start, end)
                            == ref.max_capacity_between(start, end))
                else:
                    # mutate both sides; IntSweepProfile trusts callers to
                    # have checked feasibility, so probe the reference
                    if ref.min_capacity(start, start + dur) >= q:
                        ref.reserve(start, dur, q)
                        fast.reserve(start, dur, q)
                        if rng.random() < 0.4:  # shadow-probe pattern
                            ref.add(start, dur, q)
                            fast.add(start, dur, q)
            assert list(fast.breakpoints), "profile must keep a segment"

    def test_prune_before_preserves_future_queries(self):
        rng = random.Random(7)
        for _ in range(40):
            ref, fast = _random_profile(rng)
            front = rng.randint(0, 100)
            fast.prune_before(front)
            for _ in range(10):
                t = front + rng.randint(0, 40)
                dur = rng.randint(1, 20)
                q = rng.randint(1, 8)
                assert fast.capacity_at(t) == ref.capacity_at(t)
                assert fast.fits(q, t, dur) == ref.fits(q, t, dur)
                assert (fast.earliest_fit(q, dur, after=t)
                        == ref.earliest_fit(q, dur, after=t))

    def test_int_sweep_profile_scales_instance_times(self):
        inst = ReservationInstance.from_specs(
            4, [(Fraction(1, 2), 2)], [(Fraction(1, 2), Fraction(3, 2), 3)]
        )
        tb = Timebase.of(inst)
        fast = int_sweep_profile(inst, tb)
        assert list(fast.breakpoints) == [0, 1, 4]
        assert fast.capacity_at(0) == 4 and fast.capacity_at(2) == 1


# ---------------------------------------------------------------------------
# the differential guarantee, across every registered surface
# ---------------------------------------------------------------------------

#: The generators registered at import time (tests elsewhere register
#: throwaway workloads at runtime; those are not ours to cover).
BUILTIN_WORKLOADS = tuple(available_workloads())

#: Small-but-structured parameter sets per registered workload family.
WORKLOAD_PARAMS = {
    "uniform": {"n": 9, "m": 8, "p_range": (1, 12)},
    "loguniform": {"n": 8, "m": 8, "p_max": 40.0},
    "feitelson": {"n": 8, "m": 8},
    "alpha-uniform": {"n": 8, "m": 8, "alpha": 0.5, "reservations": 3,
                      "horizon": 60.0},
    "staircase": {"n": 8, "m": 8, "steps": 3, "horizon": 40.0},
    "maintenance": {"n": 8, "m": 8, "period": 20, "duration": 5, "count": 3},
    "poisson-online": {"n": 8, "m": 8, "rate": 0.4, "p_range": (1, 10)},
    # the synthetic SWF scenario pack (all-integer times by construction)
    "swf-steady": {"n": 8, "m": 8},
    "swf-bursty": {"n": 8, "m": 8},
    "swf-heavy": {"n": 8, "m": 8},
}


def _schedule_under(name: str, instance, policy: str):
    """Run a registered scheduler under a timebase policy; exceptions are
    returned (not raised) so both paths can be compared symmetrically."""
    scheduler = get_scheduler(name)
    if hasattr(scheduler, "timebase"):
        scheduler.timebase = policy
    try:
        return scheduler.schedule(instance)
    except ReproError as exc:
        return type(exc)


def test_workload_params_cover_every_registered_generator():
    assert sorted(WORKLOAD_PARAMS) == sorted(BUILTIN_WORKLOADS)


@pytest.mark.parametrize("algorithm", available_schedulers())
def test_int_and_exact_paths_identical_everywhere(algorithm):
    """The acceptance property: for every registered scheduler x every
    registered workload generator x random seeds, the integer-timebase
    path and the exact path produce identical schedules and identical
    ``ratio_lb`` metrics.  Float-producing generators are exactified
    (floats -> equal-valued Fractions) so the fast path engages."""
    for workload, params in sorted(WORKLOAD_PARAMS.items()):
        seeds = (1, 2, 3)
        if algorithm == "optimal":  # exponential solver: tiny grids only
            params = {**params, "n": 4}
            seeds = (1,)
        for seed in seeds:
            instance = exactify_instance(
                make_workload(workload, seed=seed, **params)
            )
            exact = _schedule_under(algorithm, instance, "exact")
            fast = _schedule_under(algorithm, instance, "auto")
            context = f"{algorithm} on {workload} seed {seed}"
            if isinstance(exact, type):  # both paths must fail identically
                assert fast is exact, context
                continue
            assert not isinstance(fast, type), context
            assert exact.starts == fast.starts, context
            exact_metrics = evaluate_metrics(exact, ("makespan", "ratio_lb"))
            fast_metrics = evaluate_metrics(fast, ("makespan", "ratio_lb"))
            assert exact_metrics == fast_metrics, context


def test_fraction_heavy_congestion_grid():
    """Dense random grids with Fraction times, releases and reservations:
    the incremental sweep's wake-up/skip machinery under real contention
    (small m forces long pending queues)."""
    rng = random.Random(99)
    for trial in range(60):
        m = rng.randint(2, 6)
        denom = rng.choice([1, 2, 3, 4, 6])
        jobs = []
        for _ in range(rng.randint(4, 18)):
            jobs.append((
                Fraction(rng.randint(1, 18), denom),
                rng.randint(1, m),
                Fraction(rng.randint(0, 12), denom),
            ))
        reservations = []
        t = Fraction(rng.randint(0, 4), denom)
        for _ in range(rng.randint(0, 3)):
            dur = Fraction(rng.randint(1, 8), denom)
            reservations.append((t, dur, rng.randint(1, max(1, m - 1))))
            t += dur + Fraction(rng.randint(0, 5), denom)
        instance = ReservationInstance.from_specs(m, jobs, reservations)
        priority = rng.choice([None, "lpt", "spt", "laf"])
        exact = ListScheduler(priority, timebase="exact").schedule(instance)
        fast = ListScheduler(priority, timebase="auto").schedule(instance)
        assert exact.starts == fast.starts, f"trial {trial}"
        fast.verify()


_job_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=12),   # p (scaled by 1/denom)
        st.integers(min_value=1, max_value=6),    # q
        st.integers(min_value=0, max_value=10),   # release (scaled)
    ),
    min_size=1, max_size=14,
)
_res_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12),   # start (scaled)
        st.integers(min_value=1, max_value=6),    # duration (scaled)
        st.integers(min_value=1, max_value=3),    # q
    ),
    max_size=3,
)


@settings(max_examples=120, deadline=None)
@given(
    m=st.integers(min_value=2, max_value=8),
    denom=st.sampled_from([1, 2, 3, 5, 12]),
    jobs=_job_specs,
    reservations=_res_specs,
    priority=st.sampled_from([None, "lpt", "spt"]),
)
def test_incremental_sweep_property(m, denom, jobs, reservations, priority):
    """Hypothesis property: for any instance on any 1/denom grid, the
    incremental integer sweep equals the exact reference sweep."""
    specs = [
        (Fraction(p, denom), min(q, m), Fraction(r, denom))
        for p, q, r in jobs
    ]
    res = [
        (Fraction(s, denom), Fraction(d, denom), min(q, m - 1) or 1)
        for s, d, q in reservations
        if m > 1
    ]
    try:
        instance = ReservationInstance.from_specs(m, specs, res)
    except ReproError:
        assume(False)  # overlapping reservations exceeded the machine
    exact = ListScheduler(priority, timebase="exact").schedule(instance)
    fast = ListScheduler(priority, timebase="auto").schedule(instance)
    assert exact.starts == fast.starts


def test_on_int_timebase_generic_wrapper():
    """Any scheduler gains the fast path through the generic wrapper."""
    inst = ReservationInstance.from_specs(
        4, [(Fraction(3, 2), 2), (Fraction(1, 2), 3), (2, 1)],
        [(Fraction(1, 2), 1, 2)],
    )
    exact = ListScheduler(timebase="exact")
    wrapped = on_int_timebase(exact, inst)
    assert wrapped.starts == exact.schedule(inst).starts


@pytest.mark.parametrize("policy", available_policies())
def test_simulation_twin_identical(policy):
    """Online simulation on the integer twin: identical schedule *and*
    identical (denormalised) event trace."""
    for seed in (1, 2):
        instance = exactify_instance(
            make_workload("poisson-online", seed=seed, n=10, m=6, rate=0.5,
                          p_range=(1, 8))
        )
        exact = simulate(instance, policy, timebase="exact")
        fast = simulate(instance, policy, timebase="auto")
        assert exact.schedule.starts == fast.schedule.starts
        assert [(e.time, e.kind, e.job_id, e.queue_length)
                for e in exact.trace] == [
            (e.time, e.kind, e.job_id, e.queue_length) for e in fast.trace
        ]
        fast.schedule.verify()


# ---------------------------------------------------------------------------
# the experiment layer's timebase factor
# ---------------------------------------------------------------------------

class TestRunTimebaseFactor:
    def test_spec_roundtrip_and_validation(self):
        from repro.run import ExperimentSpec, WorkloadSpec
        from repro.run.spec import dumps_spec, loads_spec

        spec = ExperimentSpec(
            name="tb", algorithms=("lsrc",),
            workloads=(WorkloadSpec("uniform", params={"n": 4, "m": 4}),),
            timebases=("exact", "auto"),
        )
        assert loads_spec(dumps_spec(spec)) == spec
        assert spec.n_points == 2
        with pytest.raises(InvalidInstanceError):
            ExperimentSpec(
                name="bad", algorithms=("lsrc",),
                workloads=(WorkloadSpec("uniform"),),
                timebases=("warp",),
            ).validate()
        with pytest.raises(InvalidInstanceError):
            ExperimentSpec(
                name="dup", algorithms=("lsrc",),
                workloads=(WorkloadSpec("uniform"),),
                timebases=("auto", "auto"),
            )

    def test_default_timebase_keys_are_backward_compatible(self):
        """Points under the default policy must keep their pre-timebase
        keys so existing JSONL stores still resume."""
        from repro.run.runner import ExperimentPoint

        point = ExperimentPoint(0, "uniform", {"n": 4}, "lsrc", "list", 3,
                                ("makespan",))
        assert point.timebase == "auto"
        assert "timebase" not in point.factors
        pinned = ExperimentPoint(0, "uniform", {"n": 4}, "lsrc", "list", 3,
                                 ("makespan",), timebase="exact")
        assert pinned.factors["timebase"] == "exact"
        assert pinned.key != point.key

    def test_runner_sweeps_timebases_with_identical_metrics(self):
        from repro.run import ExperimentSpec, Runner, WorkloadSpec

        spec = ExperimentSpec(
            name="tb-sweep", algorithms=("lsrc", "backfill-cons"),
            workloads=(WorkloadSpec("maintenance",
                                    params={"n": 8, "m": 8, "count": 2}),),
            seeds=(0, 1),
            timebases=("exact", "auto"),
        )
        result = Runner().run(spec)
        assert len(result.rows) == spec.n_points == 8
        for algorithm in spec.algorithms:
            for seed in spec.seeds:
                pair = {
                    row["timebase"]: row for row in result.filtered(
                        algorithm=algorithm, seed=seed)
                }
                assert set(pair) == {"exact", "auto"}
                assert (pair["exact"]["makespan"]
                        == pair["auto"]["makespan"])
                assert (pair["exact"]["ratio_lb"]
                        == pair["auto"]["ratio_lb"])
