"""Tests for the exception hierarchy contract."""

import pytest

from repro.errors import (
    AlphaViolationError,
    CapacityError,
    InfeasibleInstanceError,
    InfeasibleScheduleError,
    InvalidInstanceError,
    ReproError,
    SchedulingError,
    SearchBudgetExceeded,
    TraceFormatError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc_type in (
            InvalidInstanceError,
            InfeasibleInstanceError,
            AlphaViolationError,
            InfeasibleScheduleError,
            SchedulingError,
            CapacityError,
            SearchBudgetExceeded,
            TraceFormatError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_value_error_compatibility(self):
        """Model errors double as ValueError so generic callers catch them."""
        assert issubclass(InvalidInstanceError, ValueError)
        assert issubclass(TraceFormatError, ValueError)

    def test_feasibility_is_a_validity_error(self):
        assert issubclass(InfeasibleInstanceError, InvalidInstanceError)
        assert issubclass(AlphaViolationError, InvalidInstanceError)

    def test_capacity_is_a_scheduling_error(self):
        assert issubclass(CapacityError, SchedulingError)
        assert issubclass(SearchBudgetExceeded, SchedulingError)

    def test_infeasible_schedule_carries_violations(self):
        err = InfeasibleScheduleError("bad", violations=["a", "b"])
        assert err.violations == ["a", "b"]
        assert InfeasibleScheduleError("bad").violations == []

    def test_budget_carries_incumbent(self):
        err = SearchBudgetExceeded("out of nodes", incumbent=(7, {}))
        assert err.incumbent == (7, {})

    def test_single_catch_point(self):
        """One except clause suffices for library consumers."""
        from repro.core import RigidInstance

        with pytest.raises(ReproError):
            RigidInstance(m=0, jobs=())
