"""Differential tests for the batched decision engine, the vectorized
many-job profile queries, and epoch-sharded single-trace replay.

The invariants here are the PR's contract: the batched columnar loop,
the scalar fused loop and the epoch-sharded stitcher all produce
byte-identical rows (modulo volatile wall-clock fields), and every
vectorized many-query equals its scalar per-job loop exactly.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import _warn_demotion, main
from repro.core.job import Job
from repro.core.profiles import ArrayProfile, ListProfile, TreeProfile
from repro.errors import InvalidInstanceError, SchedulingError
from repro.simulation.replay import (
    ReplayEngine,
    epoch_boundaries,
    replay_epochs,
)

#: wall-clock fields that legitimately differ between identical runs
VOLATILE = {"elapsed_seconds"}


def _trim(result):
    totals = {k: v for k, v in result.totals.items() if k not in VOLATILE}
    return totals, result.windows, result.starts


def _jobs_from_rows(rows, m):
    """(gap, runtime, procs) tuples -> released Job list."""
    jobs = []
    t = 0
    for i, (gap, p, q) in enumerate(rows):
        t += gap
        jobs.append(Job.trusted(i, p, min(q, m), t))
    return jobs


_trace_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),    # submit gap (0 => ties)
        st.integers(min_value=1, max_value=40),   # runtime
        st.integers(min_value=1, max_value=16),   # processors
    ),
    min_size=1,
    max_size=60,
)

_policies = st.sampled_from(["fcfs", "greedy", "easy"])


# ---------------------------------------------------------------------------
# batched engine == scalar fused engine
# ---------------------------------------------------------------------------

class TestBatchedEngineIdentity:
    @given(rows=_trace_rows, policy=_policies, window=st.sampled_from([0, 7]),
           uncertainty=st.sampled_from([None, "exact"]))
    @settings(max_examples=60, deadline=None)
    def test_batched_equals_scalar(self, rows, policy, window, uncertainty):
        """The satellite property: batched earliest-fit decisions equal
        the scalar per-job path across random traces x all policies —
        totals, window rows and every recorded start.  The degenerate
        ``exact`` uncertainty model rides along: it must not perturb
        either engine by a single byte."""
        m = 16
        jobs = _jobs_from_rows(rows, m)
        scalar = ReplayEngine(
            m, policy=policy, window=window, batch=False,
            record_starts=True, uncertainty=uncertainty,
        ).run(jobs)
        batched = ReplayEngine(
            m, policy=policy, window=window, batch=True,
            record_starts=True, uncertainty=uncertainty,
        ).run(jobs)
        assert _trim(batched) == _trim(scalar)

    def test_batch_auto_inactive_without_numpy(self, monkeypatch):
        """numpy absent => lossless fallback to the scalar fused path
        (same results, batched loop never entered)."""
        import importlib

        replay_mod = importlib.import_module("repro.simulation.replay")

        jobs = _jobs_from_rows([(1, 5, 4), (0, 3, 8), (2, 7, 2)], 8)
        with_numpy = ReplayEngine(8, batch=True, record_starts=True).run(jobs)

        monkeypatch.setattr(replay_mod, "numpy_module", lambda: None)
        engine = ReplayEngine(8, batch=True, record_starts=True)
        assert engine._batch_active(None) is False
        without = engine.run(jobs)
        assert _trim(without) == _trim(with_numpy)

    def test_batch_false_pins_scalar(self):
        engine = ReplayEngine(8, batch=False)
        assert engine._batch_active(None) is False

    def test_batch_rejects_garbage(self):
        with pytest.raises(SchedulingError):
            ReplayEngine(8, batch="yes")

    def test_non_array_backend_disables_batch(self):
        engine = ReplayEngine(8, batch="auto", profile_backend="list")
        assert engine._batch_active(None) is False

    def test_demotion_identical_under_batch(self):
        """A trace that demotes mid-stream (non-integral times) leaves
        the batched run with the same demotion record and the same
        schedule as the scalar run."""
        jobs = [
            Job(0, 5, 4, 0),
            Job(1, 3, 2, 1.5),     # forces auto -> list demotion
            Job(2, 7, 8, 3.0),
        ]
        results = {}
        for batch in (False, True):
            with pytest.warns(RuntimeWarning):
                results[batch] = ReplayEngine(
                    8, batch=batch, record_starts=True
                ).run(jobs)
        assert _trim(results[True]) == _trim(results[False])
        record = results[True].totals["demoted_to_list_at"]
        assert record == {"job": 1, "release": 1.5}


# ---------------------------------------------------------------------------
# vectorized many-queries == scalar loops
# ---------------------------------------------------------------------------

def _random_profile(cls, seed, m=32):
    rng = random.Random(seed)
    profile = cls([0], [m])
    t = 0
    for _ in range(rng.randrange(0, 25)):
        t += rng.randrange(0, 4)
        p = rng.randrange(1, 12)
        q = rng.randrange(1, m + 1)
        if profile.fits(q, t, p):
            profile.reserve(t, p, q)
    return profile


class TestManyQueries:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        start=st.integers(min_value=0, max_value=40),
        batch=st.lists(
            st.tuples(st.integers(min_value=0, max_value=33),
                      st.integers(min_value=1, max_value=20)),
            min_size=1, max_size=8,
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_fits_many_at_equals_scalar(self, seed, start, batch):
        profile = _random_profile(ArrayProfile, seed)
        widths = [q for q, _ in batch]
        durations = [p for _, p in batch]
        expect = [profile.fits(q, start, p) for q, p in batch]
        assert profile.fits_many_at(start, widths, durations) == expect

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        after=st.integers(min_value=0, max_value=40),
        batch=st.lists(
            st.tuples(st.integers(min_value=1, max_value=32),
                      st.integers(min_value=1, max_value=20)),
            min_size=1, max_size=8,
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_earliest_fit_many_equals_scalar(self, seed, after, batch):
        """The batched earliest-fit sweep returns exactly the per-job
        scalar answers, in input order."""
        profile = _random_profile(ArrayProfile, seed)
        widths = [q for q, _ in batch]
        durations = [p for _, p in batch]
        expect = [
            profile.earliest_fit(q, p, after=after) for q, p in batch
        ]
        assert profile.earliest_fit_many(widths, durations, after=after) \
            == expect

    @pytest.mark.parametrize("cls", [ListProfile, TreeProfile])
    def test_generic_fits_many_at_matches_array(self, cls):
        generic = _random_profile(cls, 7)
        vector = _random_profile(ArrayProfile, 7)
        batch = [(4, 3), (33, 1), (1, 50), (16, 2), (0, 1)]
        widths = [q for q, _ in batch]
        durations = [p for _, p in batch]
        for start in range(0, 30, 3):
            assert generic.fits_many_at(start, widths, durations) == \
                vector.fits_many_at(start, widths, durations)

    def test_fits_many_at_length_mismatch(self):
        profile = ArrayProfile([0], [8])
        with pytest.raises(InvalidInstanceError):
            profile.fits_many_at(0, [1, 2], [3])

    def test_try_reserve_many_commits_all_or_nothing(self):
        profile = ArrayProfile([0], [8])
        before = profile.as_lists()
        # second block cannot fit at t=0 alongside the first
        assert profile.try_reserve_many(0, [(3, 5), (2, 6)]) is False
        assert profile.as_lists() == before
        # (p=3, q=5) occupies [0,3); (p=2, q=3) occupies [0,2)
        assert profile.try_reserve_many(0, [(3, 5), (2, 3)]) is True
        assert profile.min_capacity(0, 2) == 8 - 5 - 3
        assert profile.min_capacity(2, 3) == 8 - 5
        assert profile.min_capacity(3, 10) == 8


# ---------------------------------------------------------------------------
# epoch-sharded replay == serial replay
# ---------------------------------------------------------------------------

class TestEpochBoundaries:
    @given(
        gaps=st.lists(st.integers(min_value=0, max_value=3),
                      min_size=0, max_size=80),
        epochs=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=120, deadline=None)
    def test_cuts_are_quiescent_and_increasing(self, gaps, epochs):
        releases = []
        t = 0
        for gap in gaps:
            t += gap
            releases.append(t)
        cuts = epoch_boundaries(releases, epochs)
        assert cuts == sorted(set(cuts))
        assert len(cuts) <= epochs - 1
        for c in cuts:
            assert 0 < c < len(releases)
            # a cut never splits a run of equal release times
            assert releases[c] != releases[c - 1]

    def test_trivial_cases(self):
        assert epoch_boundaries([], 4) == []
        assert epoch_boundaries([0, 1, 2], 1) == []
        # one long tie cannot be cut at all
        assert epoch_boundaries([5] * 20, 4) == []


class TestEpochShardedReplay:
    @given(
        rows=_trace_rows,
        policy=_policies,
        epochs=st.sampled_from([2, 3, 7]),
    )
    @settings(max_examples=40, deadline=None)
    def test_sharded_equals_serial(self, rows, policy, epochs):
        """The satellite property: epoch-sharded replay (K in {2,3,7})
        is identical to serial — totals, window-aggregate rows, starts."""
        m = 16
        jobs = _jobs_from_rows(rows, m)
        serial = ReplayEngine(
            m, policy=policy, window=7, record_starts=True
        ).run(jobs)
        sharded = replay_epochs(
            jobs, policy=policy, epochs=epochs, m=m,
            use_processes=False, window=7, record_starts=True,
        )
        assert _trim(sharded) == _trim(serial)

    def test_process_relay_store_is_byte_identical(self, tmp_path):
        """The real multiprocess relay: stitched JSONL equals the serial
        engine's file row for row once volatile fields are dropped."""
        serial_path = tmp_path / "serial.jsonl"
        epoch_path = tmp_path / "epochs.jsonl"
        from repro.workloads.swf import synth_swf_jobs

        jobs = list(synth_swf_jobs("steady", 3000, m=64, seed=11))
        ReplayEngine(
            64, policy="easy", window=400, store=str(serial_path)
        ).run(jobs)
        replay_epochs(
            "synth:steady:3000", policy="easy", epochs=3, m=64, seed=11,
            store=str(epoch_path), use_processes=True, window=400,
        )

        def rows(path):
            out = []
            for line in path.read_text().splitlines():
                row = json.loads(line)
                for key in VOLATILE:
                    row.pop(key, None)
                out.append(row)
            return out

        assert rows(epoch_path) == rows(serial_path)

    def test_demotion_record_crosses_epochs(self):
        """A demotion in epoch 0 rides the checkpoint relay: the final
        totals carry the original offending job, and the schedule is
        the serial one."""
        jobs = [Job(i, 4, 2, i) for i in range(8)]
        jobs[1] = Job(1, 4, 2, 0.5)
        serial = ReplayEngine(8, record_starts=True).run(jobs)
        sharded = replay_epochs(
            jobs, epochs=3, m=8, use_processes=False, record_starts=True,
        )
        assert _trim(sharded) == _trim(serial)
        assert sharded.totals["demoted_to_list_at"] == \
            {"job": 1, "release": 0.5}

    def test_rejects_bad_arguments(self):
        jobs = [Job.trusted(0, 1, 1, 0)]
        with pytest.raises(SchedulingError):
            replay_epochs(jobs, epochs=0, m=4)
        with pytest.raises(SchedulingError):
            replay_epochs(jobs, epochs=2)  # in-memory list needs m=
        with pytest.raises(SchedulingError):
            replay_epochs(jobs, epochs=2, m=4, completion_queue="heap")

    def test_checkpoint_config_mismatch_is_loud(self):
        jobs = [Job.trusted(i, 3, 2, i) for i in range(6)]
        first = ReplayEngine(8).run_slice(jobs[:3], drain=False)
        other = ReplayEngine(8, policy="fcfs")
        with pytest.raises(SchedulingError):
            other.run_slice(jobs[3:], resume=first.checkpoint)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestReplayCli:
    def test_single_policy_epoch_sharding(self, capsys):
        assert main([
            "replay", "synth:steady:800", "-p", "easy", "-j", "2",
            "--window", "400",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 epoch workers" in out

    def test_no_batch_flag(self, capsys):
        assert main([
            "replay", "synth:steady:400", "-p", "easy", "--no-batch",
            "--window", "0",
        ]) == 0
        assert "replayed 400 jobs" in capsys.readouterr().out

    def test_list_backends_reports_vector_path(self, capsys):
        assert main(["list", "--kind", "backends"]) == 0
        out = capsys.readouterr().out
        assert "array" in out
        assert "vectorized" in out

    def test_demotion_warning_is_printed(self, capsys):
        _warn_demotion("easy", {
            "demoted_to_list_at": {"job": "j42", "release": 7.5},
        })
        err = capsys.readouterr().err
        assert "'j42'" in err and "7.5" in err and "demoted" in err

    def test_no_demotion_no_warning(self, capsys):
        _warn_demotion("easy", {"n_jobs": 3})
        assert capsys.readouterr().err == ""
