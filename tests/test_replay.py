"""Streaming trace replay: ingestion, pruning, rolling-horizon engine.

The load-bearing guarantee is *differential*: chunked ``iter_swf``
ingestion driving the bounded-memory replay engine must produce
byte-identical schedules — and identical int-exact metrics — to the
whole-file ``read_swf`` + ``OnlineSimulation`` path, across policies,
profile backends and plain/gzip trace files.  A hypothesis property test
pins that down on random traces; the unit tests cover the streaming
reader's edge behaviour, ``prune_before`` soundness on both backends,
the synthetic scenario pack, window metrics, the spec ``traces`` factor
and the ``repro replay`` CLI.
"""

import gzip
import io
import json
import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.core.metrics import summarize
from repro.core.profiles import ArrayProfile, ListProfile, TreeProfile
from repro.errors import SchedulingError, TraceFormatError
from repro.run import ExperimentSpec, Runner, TraceSpec, dumps_spec, loads_spec
from repro.simulation import (
    OnlineSimulation,
    ReplayEngine,
    replay,
    replay_policies,
    replay_swf,
)
from repro.simulation.replay import parse_synth_source
from repro.workloads import (
    SYNTH_PROFILES,
    iter_swf,
    make_workload,
    read_swf,
    save_swf_trace,
    synth_swf_instance,
    synth_swf_jobs,
    write_swf_jobs,
)
from repro.workloads.swf import _parse_swf_number


# ---------------------------------------------------------------------------
# SWF number parsing (non-finite rejection)
# ---------------------------------------------------------------------------

class TestParseSWFNumber:
    def test_accepts_ints_and_decimals(self):
        assert _parse_swf_number("42") == 42
        assert _parse_swf_number("-1") == -1
        assert _parse_swf_number("2.5") == 2.5
        assert _parse_swf_number("120.0") == 120

    @pytest.mark.parametrize(
        "token", ["nan", "NaN", "inf", "-inf", "Infinity", "1e400"]
    )
    def test_rejects_non_finite(self, token):
        with pytest.raises(TraceFormatError, match="non-finite"):
            _parse_swf_number(token)

    def test_rejects_garbage(self):
        with pytest.raises(TraceFormatError, match="malformed"):
            _parse_swf_number("12x")

    def test_non_finite_line_is_skipped_and_reported(self):
        text = (
            "; MaxProcs: 8\n"
            "1 0 0 nan 4 -1 -1 4 -1 -1 1 1 1 1 1 -1 -1 -1\n"
            "2 5 0 60 2 -1 -1 2 -1 -1 1 1 1 1 1 -1 -1 -1\n"
        )
        report = read_swf(text)
        assert [j.id for j in report.instance.jobs] == [2]
        assert any("non-finite" in reason for _, reason in report.skipped)
        stream = iter_swf(io.StringIO(text))
        assert [j.id for j in stream] == [2]
        assert stream.n_skipped == 1


# ---------------------------------------------------------------------------
# streaming reader
# ---------------------------------------------------------------------------

def _swf_text(rows, maxprocs=None):
    lines = []
    if maxprocs is not None:
        lines.append(f"; MaxProcs: {maxprocs}")
    for job_no, submit, run, procs in rows:
        fields = [-1] * 18
        fields[0], fields[1], fields[2] = job_no, submit, 0
        fields[3], fields[4] = run, procs
        lines.append(" ".join(str(v) for v in fields))
    return "\n".join(lines) + "\n"


class TestIterSWF:
    def test_matches_read_swf_on_sample(self):
        from repro.workloads import SAMPLE_SWF

        whole = read_swf(SAMPLE_SWF).instance.jobs
        streamed = tuple(iter_swf(io.StringIO(SAMPLE_SWF)))
        assert streamed == whole

    def test_needs_machine_size(self):
        text = _swf_text([(1, 0, 10, 2)])
        with pytest.raises(TraceFormatError, match="machine size"):
            list(iter_swf(io.StringIO(text)))
        # explicit m= substitutes for the missing header
        jobs = list(iter_swf(io.StringIO(text), m=4))
        assert jobs[0].q == 2

    def test_out_of_order_submits_are_skipped(self):
        text = _swf_text(
            [(1, 10, 5, 1), (2, 4, 5, 1), (3, 12, 5, 1)], maxprocs=4
        )
        stream = iter_swf(io.StringIO(text))
        assert [j.id for j in stream] == [1, 3]
        assert stream.n_skipped == 1
        assert "backwards" in stream.skipped[0][1]

    def test_duplicate_ids_renamed_like_read_swf(self):
        rows = [(1, 0, 5, 1), (1, 1, 5, 1), (1, 2, 5, 1), (7, 3, 5, 1)]
        text = _swf_text(rows, maxprocs=4)
        assert (
            [j.id for j in iter_swf(io.StringIO(text))]
            == [j.id for j in read_swf(text).instance.jobs]
            == [1, "1+", "1++", 7]
        )

    def test_wide_jobs_clipped_and_reported(self):
        text = _swf_text([(1, 0, 5, 9)], maxprocs=4)
        stream = iter_swf(io.StringIO(text))
        assert [j.q for j in stream] == [4]
        # clipped jobs are replayed, so they are not counted as skipped
        assert stream.n_skipped == 0
        assert stream.n_clipped == 1
        assert "clipped" in stream.clipped[0][1]

    def test_max_jobs_truncates(self):
        text = _swf_text([(i, i, 5, 1) for i in range(1, 9)], maxprocs=4)
        assert len(list(iter_swf(io.StringIO(text), max_jobs=3))) == 3

    def test_release_rebased_to_first_submit(self):
        text = _swf_text([(1, 100, 5, 1), (2, 130, 5, 1)], maxprocs=4)
        jobs = list(iter_swf(io.StringIO(text)))
        assert [j.release for j in jobs] == [0, 30]

    def test_single_pass(self):
        text = _swf_text([(1, 0, 5, 1)], maxprocs=4)
        stream = iter_swf(io.StringIO(text))
        list(stream)
        with pytest.raises(TraceFormatError, match="single-pass"):
            list(stream)

    def test_empty_trace_raises(self):
        with pytest.raises(TraceFormatError, match="no usable jobs"):
            list(iter_swf(io.StringIO("; MaxProcs: 4\n")))

    def test_skip_report_is_capped_but_counted(self):
        rows = [(i, i, -1, 1) for i in range(1, 8)]  # all unusable
        rows.append((9, 9, 5, 1))
        text = _swf_text(rows, maxprocs=4)
        stream = iter_swf(io.StringIO(text), max_skip_reports=3)
        list(stream)
        assert len(stream.skipped) == 3
        assert stream.n_skipped == 7

    def test_gzip_path_roundtrip(self, tmp_path):
        path = tmp_path / "t.swf.gz"
        save_swf_trace(path, synth_swf_jobs("steady", 40, m=16, seed=1), 16)
        jobs = list(iter_swf(path))
        assert len(jobs) == 40
        with gzip.open(path, "rt") as fh:
            assert read_swf(fh).instance.jobs == tuple(jobs)


# ---------------------------------------------------------------------------
# synthetic scenario pack
# ---------------------------------------------------------------------------

class TestSynthPack:
    def test_unknown_profile_rejected(self):
        with pytest.raises(TraceFormatError, match="unknown synthetic"):
            list(synth_swf_jobs("nope", 5))

    @pytest.mark.parametrize("profile", SYNTH_PROFILES)
    def test_deterministic_and_prefix_stable(self, profile):
        a = list(synth_swf_jobs(profile, 200, m=64, seed=9))
        b = list(synth_swf_jobs(profile, 200, m=64, seed=9))
        prefix = list(synth_swf_jobs(profile, 50, m=64, seed=9))
        assert a == b
        assert a[:50] == prefix
        assert a != list(synth_swf_jobs(profile, 200, m=64, seed=10))

    @pytest.mark.parametrize("profile", SYNTH_PROFILES)
    def test_valid_integer_trace(self, profile):
        jobs = list(synth_swf_jobs(profile, 300, m=64, seed=0))
        assert all(isinstance(j.p, int) and isinstance(j.release, int)
                   for j in jobs)
        assert all(1 <= j.q <= 64 for j in jobs)
        releases = [j.release for j in jobs]
        assert releases == sorted(releases)

    def test_registered_in_workload_registry(self):
        inst = make_workload("swf-bursty", n=30, m=32, seed=4)
        assert inst.n == 30
        assert inst.m == 32

    def test_instance_matches_stream(self):
        inst = synth_swf_instance("heavy", n=25, m=32, seed=2)
        assert inst.jobs == tuple(synth_swf_jobs("heavy", 25, m=32, seed=2))


# ---------------------------------------------------------------------------
# prune_before soundness (differential vs the unpruned reference)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("cls", [ListProfile, TreeProfile, ArrayProfile])
class TestPruneBefore:
    def test_post_frontier_queries_unchanged(self, cls):
        rng = random.Random(17)
        times = sorted(rng.sample(range(1, 400), 30))
        caps = [rng.randint(0, 16) for _ in range(31)]
        profile = cls([0] + times, caps)
        reference = profile.copy()
        frontier = 150
        profile.prune_before(frontier)
        assert profile.breakpoints[0] == 0
        assert len(profile.breakpoints) <= len(reference.breakpoints)
        for t in range(frontier, 420, 7):
            assert profile.capacity_at(t) == reference.capacity_at(t)
        for a in range(frontier, 400, 31):
            b = a + rng.randint(1, 60)
            assert profile.min_capacity(a, b) == reference.min_capacity(a, b)
            assert profile.max_capacity_between(a, b) == \
                reference.max_capacity_between(a, b)
            assert profile.area(a, b) == reference.area(a, b)
        for q in (1, 5, 17):
            assert profile.earliest_fit(q, 9, after=frontier) == \
                reference.earliest_fit(q, 9, after=frontier)
        assert profile.final_capacity() == reference.final_capacity()

    def test_post_frontier_mutations_unchanged(self, cls):
        rng = random.Random(23)
        profile = cls([0, 40, 90, 130], [12, 6, 9, 12])
        reference = profile.copy()
        profile.prune_before(95)
        for _ in range(25):
            start = rng.randint(95, 200)
            duration = rng.randint(1, 30)
            amount = rng.randint(0, 4)
            if rng.random() < 0.5 and profile.min_capacity(
                start, start + duration
            ) >= amount:
                profile.reserve(start, duration, amount)
                reference.reserve(start, duration, amount)
            else:
                profile.add(start, duration, amount)
                reference.add(start, duration, amount)
            probe = rng.randint(95, 230)
            assert profile.capacity_at(probe) == reference.capacity_at(probe)

    def test_prune_to_tail_leaves_constant(self, cls):
        profile = cls([0, 10, 20], [4, 2, 8])
        profile.prune_before(1000)
        assert profile.as_lists() == ([0], [8])

    def test_prune_at_zero_is_noop(self, cls):
        profile = cls([0, 10], [4, 2])
        profile.prune_before(0)
        assert profile.as_lists() == ([0, 10], [4, 2])

    def test_prune_at_exact_breakpoint(self, cls):
        profile = cls([0, 10, 20, 30], [4, 2, 8, 4])
        reference = profile.copy()
        profile.prune_before(20)
        assert profile.as_lists() == ([0, 30], [8, 4])
        assert profile.capacity_at(25) == reference.capacity_at(25)

    def test_idempotent(self, cls):
        profile = cls([0, 10, 20], [4, 2, 8])
        profile.prune_before(15)
        once = profile.as_lists()
        profile.prune_before(15)
        assert profile.as_lists() == once

    def test_prune_on_constant_profile_is_noop(self, cls):
        profile = cls.constant(6)
        profile.prune_before(12345)
        assert profile.as_lists() == ([0], [6])

    def test_prune_past_frontier_then_reserve(self, cls):
        # pruning far past every breakpoint leaves the (re-anchored)
        # tail segment; the profile must stay fully usable
        profile = cls([0, 5, 9], [4, 1, 3])
        profile.prune_before(50)
        assert profile.as_lists() == ([0], [3])
        profile.reserve(60, 5, 3)
        assert profile.capacity_at(62) == 0
        assert profile.earliest_fit(3, 2, after=55) == 55

    def test_repeated_prunes_at_same_t_after_mutation(self, cls):
        profile = cls([0, 10, 20], [4, 2, 8])
        profile.prune_before(12)
        profile.reserve(15, 10, 2)
        snapshot = profile.as_lists()
        profile.prune_before(12)   # same frontier again: no change
        assert profile.as_lists() == snapshot


@settings(max_examples=40, deadline=None)
@given(
    cls=st.sampled_from([ListProfile, TreeProfile, ArrayProfile]),
    seed=st.integers(min_value=0, max_value=10_000),
    frontier=st.integers(min_value=0, max_value=220),
)
def test_prune_preserves_post_frontier_segments(cls, seed, frontier):
    """Property: after ``prune_before(t)`` the profile equals the
    unpruned reference restricted to ``[t, inf)`` — segment for segment
    (the pre-frontier part collapses into the re-anchored first
    segment, whose capacity must match the reference *at* ``t``)."""
    rng = random.Random(seed)
    times = sorted(rng.sample(range(1, 200), rng.randint(0, 12)))
    caps = [rng.randint(0, 9) for _ in range(len(times) + 1)]
    profile = cls([0] + times, caps)
    reference = profile.copy()
    profile.prune_before(frontier)
    ref_t, ref_c = reference.as_lists()
    got_t, got_c = profile.as_lists()
    # reference restricted to [frontier, inf): the segment containing
    # the frontier, re-anchored to 0, then everything after it
    i = 0
    for k, t in enumerate(ref_t):
        if t <= frontier:
            i = k
    want_t = [0] + ref_t[i + 1:]
    want_c = ref_c[i:]
    assert got_t == want_t
    assert got_c == want_c
    # prune is idempotent at the same frontier
    profile.prune_before(frontier)
    assert profile.as_lists() == (got_t, got_c)


# ---------------------------------------------------------------------------
# the rolling-horizon engine
# ---------------------------------------------------------------------------

class TestReplayEngine:
    def test_totals_match_summarize(self):
        inst = synth_swf_instance("steady", n=250, m=32, seed=6)
        reference = OnlineSimulation(inst, policy="easy").run()
        result = replay(
            synth_swf_jobs("steady", 250, m=32, seed=6), 32, policy="easy",
            window=50, record_starts=True,
        )
        assert result.starts == reference.schedule.starts
        summary = summarize(reference.schedule)
        totals = result.totals
        assert totals["makespan"] == summary.makespan
        assert totals["total_work"] == summary.total_work
        assert totals["utilization"] == summary.utilization
        assert totals["mean_wait"] == summary.mean_wait
        assert totals["max_wait"] == summary.max_wait
        assert totals["mean_slowdown"] == pytest.approx(summary.mean_slowdown)
        assert totals["n_jobs"] == 250

    def test_window_rows_partition_the_trace(self):
        result = replay(
            synth_swf_jobs("bursty", 230, m=32, seed=1), 32, window=100
        )
        assert [w["window"] for w in result.windows] == [0, 1, 2]
        assert [w["jobs"] for w in result.windows] == [100, 100, 30]
        for row in result.windows:
            assert row["ratio_lb"] >= 1.0 or math.isclose(row["ratio_lb"], 1.0)
            assert 0 < row["utilization"] <= 1.0
            assert row["mean_bounded_slowdown"] >= 1.0

    def test_window_zero_disables_rows(self):
        result = replay(
            synth_swf_jobs("steady", 60, m=16, seed=0), 16, window=0
        )
        assert result.windows == []
        assert result.totals["n_jobs"] == 60

    def test_rows_stream_to_jsonl_store(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        replay(
            synth_swf_jobs("steady", 120, m=16, seed=3), 16,
            window=50, store=str(path),
        )
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["key"] for r in rows] == [
            "window-00000000", "window-00000001", "window-00000002", "totals",
        ]
        assert rows[-1]["n_jobs"] == 120

    def test_short_run_peak_segments_is_real(self):
        """Sub-interval runs must still report the live-window peak,
        not the post-drain size (review regression: the cheap-prune
        gauge samples O(1) segment_count before every compaction)."""
        result = replay(
            synth_swf_jobs("steady", 400, m=16, seed=0), 16, window=0
        )
        assert result.totals["peak_profile_segments"] > 1

    def test_memory_stays_bounded(self):
        result = replay(
            synth_swf_jobs("steady", 4000, m=64, seed=0), 64,
            prune_interval=200,
        )
        # without pruning the profile would hold ~2 breakpoints per job
        assert result.totals["peak_profile_segments"] < 2000
        assert result.starts is None

    def test_impossible_job_raises(self):
        from repro.core.job import Job

        with pytest.raises(SchedulingError, match="processors"):
            replay([Job(id=1, p=5, q=99, release=0)], 8)

    def test_replay_swf_resolves_m_from_header(self, tmp_path):
        path = tmp_path / "t.swf"
        save_swf_trace(path, synth_swf_jobs("steady", 30, m=16, seed=0), 16)
        result = replay_swf(path, policy="greedy")
        assert result.m == 16
        assert result.totals["n_jobs"] == 30
        assert result.totals["skipped_lines"] == 0


# ---------------------------------------------------------------------------
# the property test: chunked streaming == whole-file, byte for byte
# ---------------------------------------------------------------------------

_job_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),     # submit gap
        st.integers(min_value=1, max_value=40),    # runtime
        st.integers(min_value=1, max_value=8),     # processors
    ),
    min_size=1,
    max_size=24,
)


@given(
    rows=_job_rows,
    policy=st.sampled_from(["fcfs", "greedy", "easy", "conservative"]),
    backend=st.sampled_from(["list", "tree", "array", "auto"]),
    compress=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_streamed_replay_is_byte_identical_to_in_memory(
    tmp_path_factory, rows, policy, backend, compress
):
    """The tentpole guarantee: chunked gzip/plain ``iter_swf`` ingestion
    through the pruning replay engine reproduces ``read_swf`` +
    ``OnlineSimulation`` exactly — schedules byte for byte, metrics
    int-exact — for every policy x backend combination (including the
    int64 array kernel and the auto selector, whose fused decision
    passes this differential therefore also covers)."""
    m = 8
    submit = 0
    swf_rows = []
    for i, (gap, runtime, procs) in enumerate(rows, start=1):
        submit += gap
        swf_rows.append((i, submit, runtime, procs))
    text = _swf_text(swf_rows, maxprocs=m)

    tmp = tmp_path_factory.mktemp("trace")
    path = tmp / ("t.swf.gz" if compress else "t.swf")
    if compress:
        with gzip.open(path, "wt") as fh:
            fh.write(text)
    else:
        path.write_text(text)

    instance = read_swf(text).instance
    # the in-memory engine has no "auto"; integer traces make "array"
    # its exact equivalent
    ref_backend = "array" if backend == "auto" else backend
    reference = OnlineSimulation(
        instance, policy=policy, profile_backend=ref_backend
    ).run()
    streamed = replay_swf(
        path, policy=policy, profile_backend=backend,
        window=5, prune_interval=3, record_starts=True,
    )
    assert streamed.starts == reference.schedule.starts
    summary = summarize(reference.schedule)
    assert streamed.totals["makespan"] == summary.makespan
    assert streamed.totals["total_work"] == summary.total_work
    assert streamed.totals["utilization"] == summary.utilization
    assert streamed.totals["mean_wait"] == summary.mean_wait
    assert streamed.totals["max_wait"] == summary.max_wait


# ---------------------------------------------------------------------------
# the traces factor of the experiment layer
# ---------------------------------------------------------------------------

class TestTracesFactor:
    def _spec(self, **overrides):
        base = dict(
            name="trace-grid",
            algorithms=("online:easy",),
            traces=(TraceSpec("synth:steady",
                              params={"n": 120, "m": 16, "window": 50}),),
            metrics=("makespan", "ratio_lb", "utilization"),
        )
        base.update(overrides)
        return ExperimentSpec(**base)

    def test_round_trips_through_json(self):
        spec = self._spec()
        assert loads_spec(dumps_spec(spec)) == spec

    def test_runs_and_resumes(self, tmp_path):
        store = str(tmp_path / "rows.jsonl")
        spec = self._spec(seeds=(0, 1))
        first = Runner(store=store).run(spec)
        assert first.computed == 2
        again = Runner(store=store).run(spec)
        assert again.computed == 0
        assert again.skipped == 2
        assert first.rows == again.rows
        for row in first.rows:
            assert row["workload"] == "trace"
            assert row["params"]["source"] == "synth:steady"
            assert row["ratio_lb"] >= 1.0

    def test_serial_equals_parallel(self):
        spec = self._spec(algorithms=("online:easy", "online:greedy"))
        serial = Runner(jobs=1).run(spec)
        parallel = Runner(jobs=2).run(spec)
        assert serial.rows == parallel.rows

    def test_backends_factor_sweeps_array(self):
        """The spec's profile_backends factor reaches the replay
        engine; every backend must agree on the replay metrics."""
        spec = self._spec(profile_backends=("list", "tree", "array"))
        result = Runner().run(spec)
        assert len(result.rows) == 3
        reference = result.rows[0]
        for row in result.rows[1:]:
            assert row["makespan"] == reference["makespan"]
            assert row["utilization"] == reference["utilization"]

    def test_file_trace_source(self, tmp_path):
        path = str(tmp_path / "t.swf")
        save_swf_trace(path, synth_swf_jobs("steady", 60, m=16, seed=0), 16)
        spec = self._spec(traces=(TraceSpec(path, params={"window": 0}),))
        result = Runner().run(spec)
        assert result.rows[0]["makespan"] > 0

    def test_offline_algorithm_rejected(self):
        with pytest.raises(Exception, match="online policies only"):
            self._spec(algorithms=("lsrc",)).validate()

    def test_unknown_metric_rejected(self):
        with pytest.raises(Exception, match="not produced by trace replay"):
            self._spec(metrics=("makespan", "idle_area")).validate()

    def test_missing_file_rejected(self):
        with pytest.raises(Exception, match="does not exist"):
            self._spec(traces=(TraceSpec("/no/such.swf"),)).validate()

    def test_unknown_trace_param_rejected(self):
        with pytest.raises(Exception, match="unknown parameter"):
            TraceSpec("synth:steady", params={"jobs": 5})

    def test_spec_needs_workloads_or_traces(self):
        with pytest.raises(Exception, match="workload or trace"):
            ExperimentSpec(name="empty", algorithms=("lsrc",))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestReplayCLI:
    def test_multi_policy_sharded_equals_serial(self, capsys, tmp_path):
        serial_out = str(tmp_path / "serial.jsonl")
        sharded_out = str(tmp_path / "sharded.jsonl")
        assert main([
            "replay", "synth:steady:1500", "-m", "32",
            "-p", "easy,greedy", "--window", "500", "-o", serial_out,
        ]) == 0
        assert "2 policies replayed (serial)" in capsys.readouterr().out
        assert main([
            "replay", "synth:steady:1500", "-m", "32",
            "-p", "easy,greedy", "--jobs", "2", "--window", "500",
            "-o", sharded_out,
        ]) == 0
        assert "2 worker processes" in capsys.readouterr().out
        assert (open(serial_out, "rb").read()
                == open(sharded_out, "rb").read())

    def test_synth_source(self, capsys, tmp_path):
        out = str(tmp_path / "rows.jsonl")
        code = main([
            "replay", "synth:steady:400", "-m", "32", "-p", "greedy",
            "--window", "100", "-o", out,
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "replayed 400 jobs" in printed
        assert "bounded memory" in printed
        rows = [json.loads(line)
                for line in open(out).read().splitlines()]
        assert rows[-1]["n_jobs"] == 400

    def test_trace_file_source(self, capsys, tmp_path):
        path = str(tmp_path / "t.swf")
        with open(path, "w") as fh:
            write_swf_jobs(synth_swf_jobs("bursty", 80, m=16, seed=1), 16, fh)
        assert main(["replay", path, "-p", "easy", "--window", "0"]) == 0
        assert "replayed 80 jobs" in capsys.readouterr().out

    def test_unknown_synth_profile_errors(self, capsys):
        assert main(["replay", "synth:warp"]) == 2
        assert "unknown synthetic profile" in capsys.readouterr().err

    def test_missing_file_errors(self, capsys):
        assert main(["replay", "/no/such/trace.swf"]) == 1


# ---------------------------------------------------------------------------
# engine configurations: fused vs generic, calendar vs heap, auto demotion
# ---------------------------------------------------------------------------

class TestEngineConfigurations:
    @pytest.mark.parametrize("policy", ["fcfs", "greedy", "easy"])
    def test_fused_equals_generic_rows(self, policy):
        """The fused in-engine decision passes must reproduce the
        registered policy functions row for row (windows included)."""
        jobs = list(synth_swf_jobs("bursty", 3000, m=64, seed=5))
        fused = ReplayEngine(64, policy=policy, window=500,
                             record_starts=True).run(jobs)
        generic = ReplayEngine(64, policy=policy, window=500,
                               fused_policies=False,
                               record_starts=True).run(jobs)
        assert fused.starts == generic.starts
        assert fused.windows == generic.windows
        strip = lambda t: {k: v for k, v in t.items()  # noqa: E731
                           if k != "elapsed_seconds"}
        assert strip(fused.totals) == strip(generic.totals)

    def test_calendar_equals_heap_queue(self):
        jobs = list(synth_swf_jobs("steady", 2000, m=32, seed=2))
        calendar = ReplayEngine(32, policy="easy", fused_policies=False,
                                record_starts=True).run(jobs)
        heap = ReplayEngine(32, policy="easy", fused_policies=False,
                            completion_queue="heap",
                            record_starts=True).run(jobs)
        assert calendar.starts == heap.starts
        assert calendar.windows == heap.windows

    def test_unknown_completion_queue_rejected(self):
        with pytest.raises(SchedulingError, match="completion_queue"):
            ReplayEngine(8, completion_queue="ring")

    def test_conservative_routes_to_generic_loop(self):
        # no fused twin: dispatch must fall back, not crash
        jobs = list(synth_swf_jobs("steady", 300, m=16, seed=0))
        result = ReplayEngine(16, policy="conservative").run(jobs)
        assert result.totals["n_jobs"] == 300

    def test_auto_demotes_on_float_times(self):
        """A non-integral trace under the default auto backend demotes
        the live profile to the list backend mid-stream and still
        reproduces the in-memory engine exactly."""
        from repro.core.job import Job

        jobs = [
            Job(id=1, p=10, q=4, release=0),
            Job(id=2, p=7.5, q=6, release=2.25),   # first non-int job
            Job(id=3, p=3, q=8, release=4),
            Job(id=4, p=2.5, q=2, release=4),
        ]
        from repro.core.instance import RigidInstance

        streamed = replay(jobs, 8, policy="easy", record_starts=True)
        reference = OnlineSimulation(
            RigidInstance(m=8, jobs=tuple(jobs)), policy="easy"
        ).run()
        assert streamed.starts == reference.schedule.starts

    def test_explicit_array_backend_is_loud_on_float_times(self):
        from repro.core.job import Job
        from repro.errors import InvalidInstanceError

        jobs = [Job(id=1, p=1.5, q=2, release=0)]
        with pytest.raises(InvalidInstanceError, match="integer"):
            replay(jobs, 4, policy="easy", profile_backend="array")


# ---------------------------------------------------------------------------
# sharded multi-policy replay
# ---------------------------------------------------------------------------

class TestReplayPolicies:
    def test_serial_equals_sharded_rows_and_store(self, tmp_path):
        serial_path = tmp_path / "serial.jsonl"
        sharded_path = tmp_path / "sharded.jsonl"
        serial = replay_policies(
            "synth:steady", ["easy", "greedy", "fcfs"], m=32, n=2000,
            jobs=1, store=str(serial_path), window=500,
        )
        sharded = replay_policies(
            "synth:steady", ["easy", "greedy", "fcfs"], m=32, n=2000,
            jobs=3, store=str(sharded_path), window=500,
        )
        assert serial.rows == sharded.rows
        assert serial_path.read_bytes() == sharded_path.read_bytes()
        assert list(serial.results) == ["easy", "greedy", "fcfs"]
        # merged rows carry the policy and strip wall-clock fields
        for row in serial.rows:
            assert "elapsed_seconds" not in row
            assert row["policy"] in ("easy", "greedy", "fcfs")
        totals_keys = [r["key"] for r in serial.rows if r["key"].endswith("/totals")]
        assert totals_keys == ["easy/totals", "greedy/totals", "fcfs/totals"]

    def test_results_match_single_policy_runs(self):
        multi = replay_policies("synth:bursty", ["easy", "greedy"], m=32,
                                n=800, window=0)
        for policy in ("easy", "greedy"):
            single = replay(
                synth_swf_jobs("bursty", 800, m=32, seed=0), 32,
                policy=policy, window=0,
            )
            strip = lambda t: {k: v for k, v in t.items()  # noqa: E731
                               if k != "elapsed_seconds"}
            assert strip(multi.results[policy].totals) == strip(single.totals)

    def test_file_source(self, tmp_path):
        path = str(tmp_path / "t.swf")
        save_swf_trace(path, synth_swf_jobs("steady", 120, m=16, seed=0), 16)
        multi = replay_policies(path, ["fcfs", "easy"], jobs=2, window=0)
        assert multi.m == 16
        assert multi.results["fcfs"].totals["n_jobs"] == 120

    def test_duplicate_and_unknown_policies_rejected(self):
        with pytest.raises(SchedulingError, match="duplicate"):
            replay_policies("synth:steady", ["easy", "easy"], n=10)
        with pytest.raises(SchedulingError, match="unknown"):
            replay_policies("synth:steady", ["warp-drive"], n=10)
        with pytest.raises(SchedulingError, match="at least one"):
            replay_policies("synth:steady", [], n=10)

    def test_parse_synth_source(self):
        assert parse_synth_source("synth:steady:500") == ("steady", 500)
        assert parse_synth_source("synth:heavy") == ("heavy", None)
        with pytest.raises(TraceFormatError, match="unknown synthetic"):
            parse_synth_source("synth:warp")
        with pytest.raises(TraceFormatError, match="not an integer"):
            parse_synth_source("synth:steady:many")
